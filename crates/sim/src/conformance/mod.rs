//! Cross-engine conformance harness.
//!
//! The fast engines ([`crate::duel`], [`crate::fast`]) must agree with the
//! exact slot-level engine ([`crate::exact`]) *in distribution* — they
//! consume randomness differently, so trajectories cannot match run-for-run.
//! This module packages the two tools that check the agreement:
//!
//! * [`differ`] — a statistical differ: paired trial batches on both
//!   engines over a grid of (profile, adversary, budget) cells, with
//!   Mann–Whitney and Kolmogorov–Smirnov verdicts per metric. Both engines
//!   run **the same** adversary policy — the exact engine through
//!   [`rcb_adversary::RepAsSlotAdversary`] — so a rejection means engine
//!   drift, not adversary drift.
//! * [`replay`] — a trace-level replayer: feeds a slot log recorded by the
//!   exact engine through the phase-level state machines
//!   ([`AliceState`](rcb_core::one_to_one::state::AliceState) /
//!   [`BobState`](rcb_core::one_to_one::state::BobState)) to localize the
//!   first slot at which semantics drift, something a distributional
//!   verdict cannot do.
//!
//! The `rcbsim conformance` CLI subcommand runs the default grid.

pub mod differ;
pub mod replay;

pub use differ::{
    default_grid, run_broadcast_cell, run_duel_cell, run_grid, AdversarySpec, BroadcastCell,
    CellReport, ConformanceConfig, DuelCell, GridReport, MetricVerdict,
};
pub use replay::{
    replay_broadcast_trace, replay_duel_trace, BroadcastReplay, Divergence, DuelReplay,
};
