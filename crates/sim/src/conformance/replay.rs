//! Trace-level replay: feed an exact-engine slot log back through the
//! phase-level state machines.
//!
//! The differ can say *that* the engines disagree; the replayer says
//! *where*. A [`Trace`] recorded by [`run_exact`](crate::exact::run_exact)
//! holds, per slot, the jam mask and what every listening node heard. Those
//! receptions are exactly the inputs of the phase-level machines
//! ([`AliceState`]/[`BobState`]), so the replayer re-derives the phase
//! aggregates from the log, drives mirror state machines with them, and
//! reports the first slot at which the log is inconsistent with the mirror
//! (a node listening after its mirror halted, epochs out of step, …). Any
//! such [`Divergence`] pinpoints a semantic drift between the slot-level
//! protocol adapters and the state machines the fast engines drive.

use rcb_channel::trace::{ReceptionKind, Trace};
use rcb_channel::NodeId;
use rcb_core::one_to_one::profile::DuelProfile;
use rcb_core::one_to_one::schedule::DuelSchedule;
use rcb_core::one_to_one::state::{AliceState, BobSendOutcome, BobState, PhaseKind};

/// A point where the trace contradicts the replayed state machines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    pub slot: u64,
    pub what: String,
}

/// Result of replaying a duel trace.
#[derive(Debug, Clone)]
pub struct DuelReplay {
    /// Bob's mirror received `m`.
    pub delivered: bool,
    /// Slot at which `m` arrived, if it did.
    pub delivery_slot: Option<u64>,
    pub alice_halted: bool,
    pub bob_halted: bool,
    /// Alice's mirror epoch after the last complete phase.
    pub final_epoch: u32,
    /// Slots consumed from the trace.
    pub slots: u64,
    /// Inconsistencies between the log and the mirrors (empty = conformant).
    pub divergences: Vec<Divergence>,
}

/// Replays a duel trace through mirror [`AliceState`]/[`BobState`] machines.
///
/// `trace` must come from a run over
/// [`Partition::pair`](rcb_channel::partition::Partition::pair)
/// (node 0 = Alice, node 1 = Bob) on `schedule`; records must be the
/// complete prefix of the run (the default for an ample-capacity trace).
pub fn replay_duel_trace<P: DuelProfile>(
    profile: &P,
    schedule: &DuelSchedule,
    trace: &Trace,
) -> DuelReplay {
    const ALICE: NodeId = 0;
    const BOB: NodeId = 1;

    let mut alice = AliceState::new(profile.start_epoch());
    let mut bob = BobState::new(profile.start_epoch());
    let mut divergences = Vec::new();
    let mut delivery_slot = None;

    // Per-phase aggregates, reset at each phase boundary.
    let mut alice_noise = 0u64;
    let mut heard_nack = false;
    let mut bob_noise = 0u64;
    let mut bob_nacking = false;
    let mut slots = 0u64;

    for record in trace.records() {
        slots = record.slot + 1;
        let loc = schedule.locate_duel(record.slot);
        let heard = |node: NodeId| {
            record
                .receptions
                .iter()
                .find(|(u, _)| *u == node)
                .map(|(_, kind)| *kind)
        };

        // Epoch drift: a live mirror must agree with the public schedule.
        if !alice.is_done() && alice.epoch() != loc.epoch {
            divergences.push(Divergence {
                slot: record.slot,
                what: format!(
                    "Alice mirror at epoch {} but schedule says {}",
                    alice.epoch(),
                    loc.epoch
                ),
            });
            break;
        }

        match loc.phase {
            PhaseKind::Send => {
                // Only Bob listens here.
                if heard(ALICE).is_some() {
                    divergences.push(Divergence {
                        slot: record.slot,
                        what: "Alice listened during a send phase".into(),
                    });
                }
                if let Some(kind) = heard(BOB) {
                    if bob.is_done() {
                        divergences.push(Divergence {
                            slot: record.slot,
                            what: "Bob listened after his mirror halted".into(),
                        });
                    } else {
                        match kind {
                            ReceptionKind::Message => {
                                bob.receive_message();
                                delivery_slot = Some(record.slot);
                            }
                            ReceptionKind::Noise => bob_noise += 1,
                            _ => {}
                        }
                    }
                }
            }
            PhaseKind::Nack => {
                // Only Alice listens here.
                if heard(BOB).is_some() {
                    divergences.push(Divergence {
                        slot: record.slot,
                        what: "Bob listened during a nack phase".into(),
                    });
                }
                if let Some(kind) = heard(ALICE) {
                    if alice.is_done() {
                        divergences.push(Divergence {
                            slot: record.slot,
                            what: "Alice listened after her mirror halted".into(),
                        });
                    } else {
                        match kind {
                            ReceptionKind::Nack => heard_nack = true,
                            ReceptionKind::Noise => alice_noise += 1,
                            _ => {}
                        }
                    }
                }
            }
        }

        // Phase boundary: drive the state machines with the aggregates.
        let phase_len = 1u64 << loc.epoch;
        if loc.offset + 1 == phase_len {
            let thr = profile.noise_threshold(loc.epoch);
            match loc.phase {
                PhaseKind::Send => {
                    bob_nacking = if bob.is_done() {
                        false
                    } else {
                        matches!(
                            bob.end_send_phase(false, bob_noise, thr),
                            BobSendOutcome::ContinueToNack
                        )
                    };
                    bob_noise = 0;
                }
                PhaseKind::Nack => {
                    if !alice.is_done() {
                        alice.end_epoch(heard_nack, alice_noise, thr);
                    }
                    heard_nack = false;
                    alice_noise = 0;
                    if bob_nacking {
                        bob.end_nack_phase();
                        bob_nacking = false;
                    }
                }
            }
        }
    }

    DuelReplay {
        delivered: bob.got_message(),
        delivery_slot,
        alice_halted: alice.is_done(),
        bob_halted: bob.is_done(),
        final_epoch: alice.epoch(),
        slots,
        divergences,
    }
}

/// Result of replaying a 1-to-n trace.
#[derive(Debug, Clone)]
pub struct BroadcastReplay {
    /// Per node: the slot at which it first decoded `m`, if ever. A node
    /// that starts informed (the sender) never *hears* `m`.
    pub first_heard: Vec<Option<u64>>,
    pub divergences: Vec<Divergence>,
}

impl BroadcastReplay {
    /// Nodes that decoded `m` from the channel.
    pub fn heard_count(&self) -> usize {
        self.first_heard.iter().filter(|h| h.is_some()).count()
    }
}

/// Replays a 1-to-n trace over
/// [`Partition::uniform`](rcb_channel::partition::Partition::uniform)`(n)`.
///
/// The trace records listeners but not per-node send decisions, so the full
/// [`OneToNNode`](rcb_core::one_to_n::OneToNNode) machine cannot be
/// re-driven from the log alone; what *can* be checked is the
/// informed-set dynamics: a node's `received_message` must equal "the log
/// shows it decoding `m`", and nobody decodes `m` twice (informed nodes
/// switch from listening-for-`m` to relaying it).
pub fn replay_broadcast_trace(n: usize, trace: &Trace) -> BroadcastReplay {
    let mut first_heard: Vec<Option<u64>> = vec![None; n];
    let mut divergences = Vec::new();
    for record in trace.records() {
        for &(node, kind) in &record.receptions {
            if node >= n {
                divergences.push(Divergence {
                    slot: record.slot,
                    what: format!("reception for out-of-range node {node}"),
                });
                continue;
            }
            if kind == ReceptionKind::Message && first_heard[node].is_none() {
                first_heard[node] = Some(record.slot);
            }
        }
    }
    BroadcastReplay {
        first_heard,
        divergences,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::{run_exact, ExactConfig};
    use rcb_adversary::rep_strategies::BudgetedRepBlocker;
    use rcb_adversary::slot_strategies::NoJam;
    use rcb_adversary::RepAsSlotAdversary;
    use rcb_channel::partition::Partition;
    use rcb_core::one_to_n::{OneToNParams, OneToNSchedule, OneToNSlotNode};
    use rcb_core::one_to_one::profile::Fig1Profile;
    use rcb_core::one_to_one::slot::{AliceProtocol, BobProtocol};
    use rcb_core::protocol::SlotProtocol;
    use rcb_mathkit::rng::RcbRng;

    fn record_duel(budget: u64, seed: u64) -> (Fig1Profile, DuelSchedule, Trace, bool) {
        let profile = Fig1Profile::with_start_epoch(0.05, 5);
        let schedule = DuelSchedule::new(5);
        let mut alice = AliceProtocol::new(profile);
        let mut bob = BobProtocol::new(profile);
        let partition = Partition::pair();
        let mut rng = RcbRng::new(seed);
        let mut adv = RepAsSlotAdversary::duel(BudgetedRepBlocker::new(budget, 1.0));
        let mut trace = Trace::with_capacity(1 << 22);
        let out = run_exact(
            &mut [&mut alice, &mut bob],
            &mut adv,
            &schedule,
            &partition,
            &mut rng,
            ExactConfig::default(),
            Some(&mut trace),
        );
        assert!(out.completed);
        assert_eq!(trace.dropped(), 0, "trace must hold the whole run");
        (profile, schedule, trace, bob.received_message())
    }

    #[test]
    fn replayed_duel_reaches_the_recorded_outcome() {
        for seed in 0..10 {
            let (profile, schedule, trace, delivered) = record_duel(0, seed);
            let replay = replay_duel_trace(&profile, &schedule, &trace);
            assert_eq!(
                replay.divergences,
                Vec::new(),
                "seed {seed}: slot adapters and state machines drifted"
            );
            assert_eq!(replay.delivered, delivered, "seed {seed}");
            assert!(replay.alice_halted && replay.bob_halted, "seed {seed}");
        }
    }

    #[test]
    fn replayed_jammed_duel_reaches_the_recorded_outcome() {
        for seed in 0..6 {
            let (profile, schedule, trace, delivered) = record_duel(400, seed);
            let replay = replay_duel_trace(&profile, &schedule, &trace);
            assert_eq!(replay.divergences, Vec::new(), "seed {seed}");
            assert_eq!(replay.delivered, delivered, "seed {seed}");
        }
    }

    #[test]
    fn tampered_trace_is_flagged() {
        let (profile, schedule, trace, _) = record_duel(0, 3);
        // Serialize-free tamper: rebuild a trace whose Bob keeps listening
        // after the recorded delivery. Splice an extra Bob reception into a
        // send-phase slot *after* the delivery slot.
        let replay = replay_duel_trace(&profile, &schedule, &trace);
        let Some(delivery) = replay.delivery_slot else {
            return; // premature halt this seed; nothing to tamper with
        };
        let mut injected = false;
        let records = trace
            .records()
            .iter()
            .map(|r| {
                let mut rec = r.clone();
                if !injected && r.slot > delivery {
                    // In a send phase this is "listening after halt"; in a
                    // nack phase it is "Bob listened during a nack phase".
                    // Either way the replayer must flag it.
                    rec.receptions.push((1, ReceptionKind::Clear));
                    injected = true;
                }
                rec
            })
            .collect();
        assert!(injected, "no slot after delivery to tamper");
        let verdict = replay_duel_trace(&profile, &schedule, &Trace::from_records(records));
        assert!(!verdict.divergences.is_empty(), "tampering went undetected");
    }

    #[test]
    fn replayed_broadcast_matches_received_flags() {
        let params = {
            let mut p = OneToNParams::practical();
            p.first_epoch = 4;
            p
        };
        let n = 4;
        for seed in 0..5 {
            let mut nodes: Vec<OneToNSlotNode> = (0..n)
                .map(|u| OneToNSlotNode::new(params, u == 0))
                .collect();
            let mut refs: Vec<&mut dyn SlotProtocol> = Vec::new();
            for node in nodes.iter_mut() {
                refs.push(node);
            }
            let schedule = OneToNSchedule::new(params);
            let partition = Partition::uniform(n);
            let mut rng = RcbRng::new(100 + seed);
            let mut adv = NoJam;
            let mut trace = Trace::with_capacity(1 << 22);
            let out = run_exact(
                &mut refs,
                &mut adv,
                &schedule,
                &partition,
                &mut rng,
                ExactConfig {
                    max_slots: 40_000_000,
                },
                Some(&mut trace),
            );
            assert!(out.completed);
            assert_eq!(trace.dropped(), 0);
            let replay = replay_broadcast_trace(n, &trace);
            assert!(replay.divergences.is_empty());
            for (u, node) in nodes.iter().enumerate().skip(1) {
                assert_eq!(
                    replay.first_heard[u].is_some(),
                    node.received_message(),
                    "seed {seed}, node {u}: log and node state disagree on m"
                );
            }
        }
    }
}
