//! Statistical differ: paired trial batches on the exact and fast engines.
//!
//! Each *cell* fixes a protocol configuration and an adversary policy; the
//! harness runs `trials` independent executions per engine (deterministic
//! per-trial RNG streams via [`run_trials`]) and compares the load-bearing
//! metrics with two nonparametric tests: Mann–Whitney U (location shifts)
//! and two-sample Kolmogorov–Smirnov (any distributional difference). Under
//! the null — both engines sample the same distribution — p-values are
//! uniform, so `p < alpha` with `alpha = 1e-3` is a 1-in-1000 fluke per
//! test and treated as an engine divergence.
//!
//! This replaces the ad-hoc mean±tolerance checks the validation tests used
//! to hand-roll, and fixes their confound: the old tests compared
//! `BudgetedPhaseBlocker` (2 budget units per slot, both parties hear
//! noise) on the exact engine against `BudgetedRepBlocker` (1 unit, only
//! the listener) on the fast engine — two different attacks. Here one
//! [`AdversarySpec`] builds the *same* repetition strategy for both
//! engines; the exact engine drives it through
//! [`RepAsSlotAdversary`].
//!
//! ## Reading the worst p-value
//!
//! A full default-grid run computes on the order of 100 p-values (12 cells
//! × 4–5 verdict metrics × 2 tests), so under the null the *minimum* of
//! them is routinely in the 0.01–0.05 range — that is what the order
//! statistic of ~100 uniforms looks like, not evidence of drift. The gate
//! only fires below `alpha = 1e-3` per test (grid-wide false-positive rate
//! ≈ 10%, driven to ~0 on a re-run at a different seed). A concrete worked
//! example: the `faults[skew=n1+1]` duel cell once showed `bob_cost`
//! MW-p = 0.0198 — suspicious-looking until checked against both engines'
//! skew semantics, which are byte-for-byte the same strict comparison
//! (`offset < skew_slots`, certified deterministically by
//! `skew_boundary_is_strict_in_both_engines`). Cells known to sit near the
//! verdict threshold can raise their own sample size via
//! [`DuelCell::trial_multiplier`] instead of loosening the gate for the
//! whole grid.

use rcb_adversary::rep_strategies::{BudgetedRepBlocker, KeepAliveBlocker, NoJamRep};
use rcb_adversary::traits::RepetitionAdversary;
use rcb_adversary::RepAsSlotAdversary;
use rcb_channel::partition::Partition;
use rcb_core::one_to_n::{OneToNParams, OneToNSchedule, OneToNSlotNode};
use rcb_core::one_to_one::profile::Fig1Profile;
use rcb_core::one_to_one::schedule::DuelSchedule;
use rcb_core::one_to_one::slot::{AliceProtocol, BobProtocol};
use rcb_core::protocol::SlotProtocol;
use rcb_mathkit::gof::ks_two_sample;
use rcb_mathkit::hypothesis::mann_whitney_u;

use crate::duel::{run_duel_faulted, DuelConfig};
use crate::exact::{run_exact_faulted, ExactConfig};
use crate::fast::{run_broadcast_faulted, FastConfig};
use crate::faults::FaultPlan;
use crate::runner::{run_trials, Parallelism};

use std::fmt;

/// An adversary policy both engines can run. Each trial on each engine gets
/// a **fresh** instance (budgets reset), so trials stay i.i.d.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdversarySpec {
    /// No jamming (`T = 0`).
    NoJam,
    /// [`BudgetedRepBlocker`]: jam a `fraction`-suffix of every repetition
    /// while the budget lasts.
    Budgeted { budget: u64, fraction: f64 },
    /// [`KeepAliveBlocker`]: jam only odd repetitions, keeping the victims
    /// active for longer.
    KeepAlive { budget: u64, fraction: f64 },
}

impl AdversarySpec {
    /// A fresh strategy instance with its full budget.
    pub fn build(&self) -> Box<dyn RepetitionAdversary> {
        match *self {
            AdversarySpec::NoJam => Box::new(NoJamRep),
            AdversarySpec::Budgeted { budget, fraction } => {
                Box::new(BudgetedRepBlocker::new(budget, fraction))
            }
            AdversarySpec::KeepAlive { budget, fraction } => {
                Box::new(KeepAliveBlocker::new(budget, fraction))
            }
        }
    }
}

impl fmt::Display for AdversarySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdversarySpec::NoJam => write!(f, "T=0"),
            AdversarySpec::Budgeted { budget, fraction } => {
                write!(f, "blocker(T={budget}, q={fraction})")
            }
            AdversarySpec::KeepAlive { budget, fraction } => {
                write!(f, "keepalive(T={budget}, q={fraction})")
            }
        }
    }
}

/// One 1-to-1 (Figure 1) grid cell.
#[derive(Debug, Clone, Copy)]
pub struct DuelCell {
    /// Error tolerance ε of the profile.
    pub error_rate: f64,
    /// Start epoch (kept small so the exact engine stays fast).
    pub start_epoch: u32,
    pub adversary: AdversarySpec,
    /// Non-adversarial fault plan, applied to both engines. Fault cells
    /// are how the differ certifies that the two fault implementations
    /// agree in distribution, not just the clean paths.
    pub fault: FaultPlan,
    /// Multiplies `ConformanceConfig::trials` for this cell only. Use > 1
    /// for cells whose p-values historically land near the verdict
    /// threshold: more samples sharpen the test where it matters without
    /// inflating the whole grid's runtime. `0` is treated as `1`.
    pub trial_multiplier: u64,
}

/// One 1-to-n (Figure 2) grid cell.
#[derive(Debug, Clone, Copy)]
pub struct BroadcastCell {
    pub n: usize,
    /// `OneToNParams::practical()` with this `first_epoch`.
    pub first_epoch: u32,
    pub adversary: AdversarySpec,
    /// Non-adversarial fault plan, applied to both engines.
    pub fault: FaultPlan,
    /// Per-cell multiplier on `ConformanceConfig::trials`; see
    /// [`DuelCell::trial_multiplier`].
    pub trial_multiplier: u64,
}

/// Harness parameters.
#[derive(Debug, Clone, Copy)]
pub struct ConformanceConfig {
    /// Trials per engine per cell.
    pub trials: u64,
    /// Master seed; the fast engine's batch uses a derived stream.
    pub seed: u64,
    /// Per-test significance level for the divergence verdict.
    pub alpha: f64,
    pub parallelism: Parallelism,
}

impl Default for ConformanceConfig {
    fn default() -> Self {
        Self {
            trials: 200,
            seed: 2014,
            alpha: 1e-3,
            parallelism: Parallelism::Auto,
        }
    }
}

impl ConformanceConfig {
    /// The fast engine must not share trial seeds with the exact engine:
    /// the engines consume different amounts of randomness per trial, and
    /// partially-shared streams would correlate the two samples.
    fn fast_seed(&self) -> u64 {
        self.seed ^ 0x9e37_79b9_7f4a_7c15
    }
}

/// Two-engine comparison of one metric.
#[derive(Debug, Clone)]
pub struct MetricVerdict {
    pub metric: &'static str,
    pub exact_mean: f64,
    pub fast_mean: f64,
    /// Mann–Whitney two-sided p.
    pub mw_p: f64,
    /// Rank-biserial effect size in `[-1, 1]`.
    pub effect_size: f64,
    /// KS statistic `D` and its p-value.
    pub ks_d: f64,
    pub ks_p: f64,
    /// Advisory metrics are reported but excluded from the divergence
    /// verdict (e.g. `slots`: the fast engines round runs up to phase
    /// boundaries by construction, so small shifts are expected).
    pub advisory: bool,
}

impl MetricVerdict {
    fn compare(metric: &'static str, exact: &[f64], fast: &[f64], advisory: bool) -> Self {
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let degenerate = {
            // Both samples one identical constant: every test statistic is
            // 0/0; that is perfect agreement, not a divergence.
            let first = exact[0];
            exact.iter().chain(fast).all(|&x| x == first)
        };
        let (mw_p, effect_size, ks_d, ks_p) = if degenerate {
            (1.0, 0.0, 0.0, 1.0)
        } else {
            let mw = mann_whitney_u(exact, fast);
            let ks = ks_two_sample(exact, fast);
            (mw.p_two_sided, mw.effect_size, ks.d, ks.p)
        };
        Self {
            metric,
            exact_mean: mean(exact),
            fast_mean: mean(fast),
            mw_p,
            effect_size,
            ks_d,
            ks_p,
            advisory,
        }
    }

    /// The smaller of the two test p-values.
    pub fn worst_p(&self) -> f64 {
        self.mw_p.min(self.ks_p)
    }

    pub fn diverges(&self, alpha: f64) -> bool {
        !self.advisory && self.worst_p() < alpha
    }
}

/// All metric verdicts for one grid cell.
#[derive(Debug, Clone)]
pub struct CellReport {
    pub name: String,
    pub trials: u64,
    pub metrics: Vec<MetricVerdict>,
}

impl CellReport {
    pub fn diverges(&self, alpha: f64) -> bool {
        self.metrics.iter().any(|m| m.diverges(alpha))
    }

    /// Smallest verdict-relevant p in the cell (1.0 if all advisory).
    pub fn worst_p(&self) -> f64 {
        self.metrics
            .iter()
            .filter(|m| !m.advisory)
            .map(MetricVerdict::worst_p)
            .fold(1.0, f64::min)
    }
}

/// The full grid's verdicts.
#[derive(Debug, Clone)]
pub struct GridReport {
    pub alpha: f64,
    pub cells: Vec<CellReport>,
}

impl GridReport {
    pub fn passed(&self) -> bool {
        self.cells.iter().all(|c| !c.diverges(self.alpha))
    }

    pub fn worst_p(&self) -> f64 {
        self.cells
            .iter()
            .map(CellReport::worst_p)
            .fold(1.0, f64::min)
    }

    /// Human-readable table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for cell in &self.cells {
            out.push_str(&format!(
                "cell: {} ({} trials/engine)\n",
                cell.name, cell.trials
            ));
            out.push_str(
                "  metric            exact-mean   fast-mean      MW-p     KS-D      KS-p\n",
            );
            for m in &cell.metrics {
                let flag = if m.diverges(self.alpha) {
                    "  << DIVERGES"
                } else if m.advisory {
                    "  (advisory)"
                } else {
                    ""
                };
                out.push_str(&format!(
                    "  {:<16} {:>11.3} {:>11.3} {:>9.4} {:>8.4} {:>9.4}{}\n",
                    m.metric, m.exact_mean, m.fast_mean, m.mw_p, m.ks_d, m.ks_p, flag
                ));
            }
        }
        out.push_str(&format!(
            "grid {}: worst p = {:.4} (alpha = {})\n",
            if self.passed() { "PASSED" } else { "FAILED" },
            self.worst_p(),
            self.alpha
        ));
        out
    }
}

struct DuelSample {
    alice: f64,
    bob: f64,
    max: f64,
    delivered: f64,
    slots: f64,
}

/// Runs one duel cell on both engines and compares the metrics.
pub fn run_duel_cell(cell: &DuelCell, cfg: &ConformanceConfig) -> CellReport {
    let profile = Fig1Profile::with_start_epoch(cell.error_rate, cell.start_epoch);
    let trials = cfg.trials.saturating_mul(cell.trial_multiplier.max(1));
    let exact: Vec<DuelSample> = run_trials(trials, cfg.seed, cfg.parallelism, |_, rng| {
        let mut alice = AliceProtocol::new(profile);
        let mut bob = BobProtocol::new(profile);
        let schedule = DuelSchedule::new(cell.start_epoch);
        let partition = Partition::pair();
        let mut adv = RepAsSlotAdversary::duel(cell.adversary.build());
        let out = run_exact_faulted(
            &mut [&mut alice, &mut bob],
            &mut adv,
            &schedule,
            &partition,
            rng,
            ExactConfig::default(),
            None,
            &cell.fault,
        );
        DuelSample {
            alice: out.ledger.node_cost(0) as f64,
            bob: out.ledger.node_cost(1) as f64,
            max: out.ledger.max_node_cost() as f64,
            delivered: bob.received_message() as u64 as f64,
            slots: out.slots as f64,
        }
    });
    let fast: Vec<DuelSample> = run_trials(trials, cfg.fast_seed(), cfg.parallelism, |_, rng| {
        let mut adv = cell.adversary.build();
        let out = run_duel_faulted(&profile, &mut adv, rng, DuelConfig::default(), &cell.fault);
        DuelSample {
            alice: out.alice_cost as f64,
            bob: out.bob_cost as f64,
            max: out.max_cost() as f64,
            delivered: out.delivered as u64 as f64,
            slots: out.slots as f64,
        }
    });

    let col = |f: fn(&DuelSample) -> f64, v: &[DuelSample]| v.iter().map(f).collect::<Vec<_>>();
    let metrics = vec![
        MetricVerdict::compare(
            "alice_cost",
            &col(|s| s.alice, &exact),
            &col(|s| s.alice, &fast),
            false,
        ),
        MetricVerdict::compare(
            "bob_cost",
            &col(|s| s.bob, &exact),
            &col(|s| s.bob, &fast),
            false,
        ),
        MetricVerdict::compare(
            "max_cost",
            &col(|s| s.max, &exact),
            &col(|s| s.max, &fast),
            false,
        ),
        MetricVerdict::compare(
            "delivered",
            &col(|s| s.delivered, &exact),
            &col(|s| s.delivered, &fast),
            false,
        ),
        MetricVerdict::compare(
            "slots",
            &col(|s| s.slots, &exact),
            &col(|s| s.slots, &fast),
            true,
        ),
    ];
    CellReport {
        name: format!(
            "duel ε={} i₀={} {}{}",
            cell.error_rate,
            cell.start_epoch,
            cell.adversary,
            fault_tag(&cell.fault)
        ),
        trials,
        metrics,
    }
}

/// ` faults[…]` suffix for cell names; empty for the clean plan.
fn fault_tag(fault: &FaultPlan) -> String {
    if fault.is_none() {
        String::new()
    } else {
        format!(" faults[{fault}]")
    }
}

struct BroadcastSample {
    mean: f64,
    max: f64,
    informed: f64,
    slots: f64,
}

/// Runs one 1-to-n cell on both engines and compares the metrics.
pub fn run_broadcast_cell(cell: &BroadcastCell, cfg: &ConformanceConfig) -> CellReport {
    let mut params = OneToNParams::practical();
    params.first_epoch = cell.first_epoch;
    let n = cell.n;
    let trials = cfg.trials.saturating_mul(cell.trial_multiplier.max(1));

    let exact: Vec<BroadcastSample> = run_trials(trials, cfg.seed, cfg.parallelism, |_, rng| {
        let mut nodes: Vec<OneToNSlotNode> = (0..n)
            .map(|u| OneToNSlotNode::new(params, u == 0))
            .collect();
        let mut refs: Vec<&mut dyn SlotProtocol> = Vec::new();
        for node in nodes.iter_mut() {
            refs.push(node);
        }
        let schedule = OneToNSchedule::new(params);
        let partition = Partition::uniform(n);
        let mut adv = RepAsSlotAdversary::broadcast(cell.adversary.build(), n);
        let out = run_exact_faulted(
            &mut refs,
            &mut adv,
            &schedule,
            &partition,
            rng,
            ExactConfig {
                max_slots: 40_000_000,
            },
            None,
            &cell.fault,
        );
        let informed = nodes.iter().filter(|v| v.received_message()).count();
        BroadcastSample {
            mean: out.ledger.mean_node_cost(),
            max: out.ledger.max_node_cost() as f64,
            informed: informed as f64 / n as f64,
            slots: out.slots as f64,
        }
    });
    let fast: Vec<BroadcastSample> =
        run_trials(trials, cfg.fast_seed(), cfg.parallelism, |_, rng| {
            let mut adv = cell.adversary.build();
            let out = run_broadcast_faulted(
                &params,
                n,
                &[0],
                &mut adv,
                rng,
                FastConfig::default(),
                &mut (),
                &cell.fault,
            );
            BroadcastSample {
                mean: out.mean_cost(),
                max: out.max_cost() as f64,
                informed: out.informed as f64 / n as f64,
                slots: out.slots as f64,
            }
        });

    let col =
        |f: fn(&BroadcastSample) -> f64, v: &[BroadcastSample]| v.iter().map(f).collect::<Vec<_>>();
    let metrics = vec![
        MetricVerdict::compare(
            "mean_cost",
            &col(|s| s.mean, &exact),
            &col(|s| s.mean, &fast),
            false,
        ),
        MetricVerdict::compare(
            "max_cost",
            &col(|s| s.max, &exact),
            &col(|s| s.max, &fast),
            false,
        ),
        MetricVerdict::compare(
            "informed",
            &col(|s| s.informed, &exact),
            &col(|s| s.informed, &fast),
            false,
        ),
        MetricVerdict::compare(
            "slots",
            &col(|s| s.slots, &exact),
            &col(|s| s.slots, &fast),
            true,
        ),
    ];
    CellReport {
        name: format!(
            "broadcast n={} i₀={} {}{}",
            cell.n,
            cell.first_epoch,
            cell.adversary,
            fault_tag(&cell.fault)
        ),
        trials,
        metrics,
    }
}

/// The default (profile × adversary × budget × fault) grid: unjammed
/// baselines, blanket blockers at two budgets, a partial-fraction blocker,
/// a keep-alive schedule, and fault-injection cells (loss under jamming,
/// battery brownout, clock skew, crash–restart) for both protocol
/// families.
pub fn default_grid() -> (Vec<DuelCell>, Vec<BroadcastCell>) {
    let duel = |adversary| DuelCell {
        error_rate: 0.05,
        start_epoch: 6,
        adversary,
        fault: FaultPlan::none(),
        trial_multiplier: 1,
    };
    let duels = vec![
        duel(AdversarySpec::NoJam),
        duel(AdversarySpec::Budgeted {
            budget: 512,
            fraction: 1.0,
        }),
        duel(AdversarySpec::Budgeted {
            budget: 2048,
            fraction: 1.0,
        }),
        duel(AdversarySpec::Budgeted {
            budget: 1024,
            fraction: 0.5,
        }),
        duel(AdversarySpec::KeepAlive {
            budget: 1024,
            fraction: 1.0,
        }),
        DuelCell {
            fault: FaultPlan::none().with_loss(0.15),
            ..duel(AdversarySpec::Budgeted {
                budget: 512,
                fraction: 1.0,
            })
        },
        DuelCell {
            fault: FaultPlan::none().with_battery(64),
            ..duel(AdversarySpec::NoJam)
        },
        DuelCell {
            fault: FaultPlan::none().with_skew(1, 1),
            // This cell's bob_cost MW-p once landed at 0.0198 — within the
            // expected min-of-~100-uniforms range (see module docs), and
            // the boundary semantics are certified identical by a
            // deterministic test. The larger sample keeps its p-values
            // comfortably away from the verdict threshold anyway.
            trial_multiplier: 4,
            ..duel(AdversarySpec::NoJam)
        },
    ];
    let broadcast = |adversary| BroadcastCell {
        n: 5,
        first_epoch: 4,
        adversary,
        fault: FaultPlan::none(),
        trial_multiplier: 1,
    };
    let broadcasts = vec![
        broadcast(AdversarySpec::NoJam),
        broadcast(AdversarySpec::Budgeted {
            budget: 256,
            fraction: 1.0,
        }),
        BroadcastCell {
            fault: FaultPlan::none().with_loss(0.15),
            ..broadcast(AdversarySpec::NoJam)
        },
        BroadcastCell {
            fault: FaultPlan::none().with_crash(1, 2, 6, true),
            ..broadcast(AdversarySpec::NoJam)
        },
    ];
    (duels, broadcasts)
}

/// Runs a grid of cells and collects the verdicts.
pub fn run_grid(
    duels: &[DuelCell],
    broadcasts: &[BroadcastCell],
    cfg: &ConformanceConfig,
) -> GridReport {
    let mut cells = Vec::new();
    for cell in duels {
        cells.push(run_duel_cell(cell, cfg));
    }
    for cell in broadcasts {
        cells.push(run_broadcast_cell(cell, cfg));
    }
    GridReport {
        alpha: cfg.alpha,
        cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> ConformanceConfig {
        ConformanceConfig {
            trials: 40,
            seed: 7,
            alpha: 1e-3,
            parallelism: Parallelism::Fixed(1),
        }
    }

    #[test]
    fn unjammed_duel_cell_agrees() {
        let cell = DuelCell {
            error_rate: 0.05,
            start_epoch: 6,
            adversary: AdversarySpec::NoJam,
            fault: FaultPlan::none(),
            trial_multiplier: 1,
        };
        let report = run_duel_cell(&cell, &small_cfg());
        assert!(
            !report.diverges(1e-3),
            "engines diverge on an unjammed cell:\n{:#?}",
            report
        );
    }

    #[test]
    fn jammed_duel_cell_agrees() {
        let cell = DuelCell {
            error_rate: 0.05,
            start_epoch: 6,
            adversary: AdversarySpec::Budgeted {
                budget: 512,
                fraction: 1.0,
            },
            fault: FaultPlan::none(),
            trial_multiplier: 1,
        };
        let report = run_duel_cell(&cell, &small_cfg());
        assert!(
            !report.diverges(1e-3),
            "engines diverge under jamming:\n{:#?}",
            report
        );
    }

    #[test]
    fn lossy_duel_cell_agrees() {
        // The fault implementations are engine-specific (receiver
        // condition vs. sampled-event coin); the differ must certify they
        // sample the same distribution.
        let cell = DuelCell {
            error_rate: 0.05,
            start_epoch: 6,
            adversary: AdversarySpec::Budgeted {
                budget: 512,
                fraction: 1.0,
            },
            fault: FaultPlan::none().with_loss(0.15),
            trial_multiplier: 1,
        };
        let report = run_duel_cell(&cell, &small_cfg());
        assert!(report.name.contains("faults[loss=0.15]"), "{}", report.name);
        assert!(
            !report.diverges(1e-3),
            "engines diverge on a lossy cell:\n{:#?}",
            report
        );
    }

    #[test]
    fn crash_broadcast_cell_agrees() {
        let cell = BroadcastCell {
            n: 5,
            first_epoch: 4,
            adversary: AdversarySpec::NoJam,
            fault: FaultPlan::none().with_crash(1, 2, 6, true),
            trial_multiplier: 1,
        };
        let cfg = ConformanceConfig {
            trials: 25,
            ..small_cfg()
        };
        let report = run_broadcast_cell(&cell, &cfg);
        assert!(
            !report.diverges(1e-3),
            "engines diverge on a crash–restart cell:\n{:#?}",
            report
        );
    }

    #[test]
    fn differ_detects_a_planted_divergence() {
        // Power check: exact runs jammed, fast runs unjammed. The jammed
        // runs burn far more energy, so the cost metrics must reject hard.
        // (Built by hand since the public API deliberately runs one spec on
        // both engines.)
        let cfg = small_cfg();
        let profile = Fig1Profile::with_start_epoch(0.05, 6);
        let jammed = AdversarySpec::Budgeted {
            budget: 4096,
            fraction: 1.0,
        };
        let exact: Vec<f64> = run_trials(cfg.trials, cfg.seed, cfg.parallelism, |_, rng| {
            let mut alice = AliceProtocol::new(profile);
            let mut bob = BobProtocol::new(profile);
            let schedule = DuelSchedule::new(6);
            let partition = Partition::pair();
            let mut adv = RepAsSlotAdversary::duel(jammed.build());
            let out = run_exact_faulted(
                &mut [&mut alice, &mut bob],
                &mut adv,
                &schedule,
                &partition,
                rng,
                ExactConfig::default(),
                None,
                &FaultPlan::none(),
            );
            out.ledger.max_node_cost() as f64
        });
        let fast: Vec<f64> = run_trials(cfg.trials, cfg.fast_seed(), cfg.parallelism, |_, rng| {
            let mut adv = AdversarySpec::NoJam.build();
            run_duel_faulted(
                &profile,
                &mut adv,
                rng,
                DuelConfig::default(),
                &FaultPlan::none(),
            )
            .max_cost() as f64
        });
        let verdict = MetricVerdict::compare("max_cost", &exact, &fast, false);
        assert!(
            verdict.diverges(1e-3),
            "differ has no power against a 4096-budget mismatch: {verdict:#?}"
        );
    }

    #[test]
    fn reports_are_deterministic() {
        let cell = DuelCell {
            error_rate: 0.05,
            start_epoch: 6,
            adversary: AdversarySpec::Budgeted {
                budget: 256,
                fraction: 1.0,
            },
            fault: FaultPlan::none(),
            trial_multiplier: 1,
        };
        let cfg = ConformanceConfig {
            trials: 20,
            ..small_cfg()
        };
        let a = run_duel_cell(&cell, &cfg);
        let b = run_duel_cell(&cell, &cfg);
        for (ma, mb) in a.metrics.iter().zip(&b.metrics) {
            assert_eq!(ma.mw_p, mb.mw_p, "{}", ma.metric);
            assert_eq!(ma.ks_d, mb.ks_d, "{}", ma.metric);
        }
    }

    #[test]
    fn degenerate_constant_metrics_do_not_reject() {
        let v = MetricVerdict::compare("delivered", &[1.0; 30], &[1.0; 30], false);
        assert_eq!(v.worst_p(), 1.0);
        assert!(!v.diverges(0.05));
    }

    #[test]
    fn trial_multiplier_scales_the_cell_sample() {
        let cell = DuelCell {
            error_rate: 0.05,
            start_epoch: 6,
            adversary: AdversarySpec::NoJam,
            fault: FaultPlan::none(),
            trial_multiplier: 3,
        };
        let cfg = ConformanceConfig {
            trials: 10,
            ..small_cfg()
        };
        let report = run_duel_cell(&cell, &cfg);
        assert_eq!(report.trials, 30, "multiplier must scale the sample");
        assert!(report.metrics.iter().all(|m| m.mw_p.is_finite()));
    }

    /// Both engines implement `skew = s` as the strict mask
    /// `offset < s` within each period. This pins the convention down
    /// deterministically: an always-on sender plus a listener that records
    /// its first decoded slot, run through the exact engine, must agree
    /// slot-for-slot with the fast duel engine's delivery slot at every
    /// skew value — including both boundary cases (s = 0 masks nothing,
    /// s = period length masks everything). This is the certificate behind
    /// dismissing the `faults[skew=n1+1]` cell's near-threshold p-value as
    /// a multiple-comparison artifact rather than an off-by-one.
    #[test]
    fn skew_boundary_is_strict_in_both_engines() {
        use rcb_channel::slot::{Action, Reception};
        use rcb_channel::{Payload, Slot};
        use rcb_core::one_to_one::profile::DuelProfile;
        use rcb_core::protocol::{PeriodLoc, Schedule};
        use rcb_mathkit::rng::RcbRng;

        const PERIOD: u64 = 4;
        const HORIZON: u64 = 2 * PERIOD;

        struct FourSlotPeriods;
        impl Schedule for FourSlotPeriods {
            fn locate(&self, slot: Slot) -> PeriodLoc {
                PeriodLoc {
                    period: slot / PERIOD,
                    offset: slot % PERIOD,
                    len: PERIOD,
                }
            }
        }

        #[derive(Default)]
        struct MeteredSender {
            slot: u64,
        }
        impl SlotProtocol for MeteredSender {
            fn act(&mut self, _rng: &mut RcbRng) -> Action {
                if self.is_done() {
                    Action::Sleep
                } else {
                    Action::Send(Payload::message())
                }
            }
            fn end_slot(&mut self, _heard: Option<&Reception>) {
                self.slot += 1;
            }
            fn is_done(&self) -> bool {
                self.slot >= HORIZON
            }
            fn received_message(&self) -> bool {
                true
            }
        }

        #[derive(Default)]
        struct BoundaryProbe {
            slot: u64,
            first_decode: Option<u64>,
        }
        impl SlotProtocol for BoundaryProbe {
            fn act(&mut self, _rng: &mut RcbRng) -> Action {
                if self.is_done() {
                    Action::Sleep
                } else {
                    Action::Listen
                }
            }
            fn end_slot(&mut self, heard: Option<&Reception>) {
                if let Some(r) = heard {
                    if r.is_message() && self.first_decode.is_none() {
                        self.first_decode = Some(self.slot);
                    }
                }
                self.slot += 1;
            }
            fn is_done(&self) -> bool {
                self.slot >= HORIZON
            }
            fn received_message(&self) -> bool {
                self.first_decode.is_some()
            }
        }

        struct AlwaysOnProfile;
        impl DuelProfile for AlwaysOnProfile {
            fn start_epoch(&self) -> u32 {
                1
            }
            fn rate(&self, _epoch: u32) -> f64 {
                1.0
            }
            fn noise_threshold(&self, _epoch: u32) -> f64 {
                100.0
            }
            fn phase_len(&self, _epoch: u32) -> u64 {
                PERIOD
            }
        }

        let exact_first_decode = |s: u64| {
            let mut sender = MeteredSender::default();
            let mut probe = BoundaryProbe::default();
            let mut adv = RepAsSlotAdversary::duel(Box::new(NoJamRep));
            let mut rng = RcbRng::new(9);
            run_exact_faulted(
                &mut [&mut sender, &mut probe],
                &mut adv,
                &FourSlotPeriods,
                &Partition::pair(),
                &mut rng,
                ExactConfig::default(),
                None,
                &FaultPlan::none().with_skew(1, s),
            );
            probe.first_decode
        };
        let fast_delivery = |s: u64| {
            let mut rng = RcbRng::new(9);
            let mut adv = NoJamRep;
            run_duel_faulted(
                &AlwaysOnProfile,
                &mut adv,
                &mut rng,
                DuelConfig::default(),
                &FaultPlan::none().with_skew(1, s),
            )
            .delivery_slot
        };
        for s in 0..=PERIOD {
            let exact = exact_first_decode(s);
            let fast = fast_delivery(s);
            assert_eq!(exact, fast, "skew boundary disagrees at s = {s}");
            // And the shared convention itself: first decode at offset s.
            assert_eq!(exact, (s < PERIOD).then_some(s), "s = {s}");
        }
    }

    #[test]
    fn render_mentions_every_cell() {
        let report = GridReport {
            alpha: 1e-3,
            cells: vec![CellReport {
                name: "duel test-cell".into(),
                trials: 5,
                metrics: vec![MetricVerdict::compare(
                    "delivered",
                    &[1.0, 1.0, 0.0],
                    &[1.0, 0.0, 1.0],
                    false,
                )],
            }],
        };
        let text = report.render();
        assert!(text.contains("test-cell"));
        assert!(text.contains("delivered"));
        assert!(text.contains("PASSED"));
    }
}
