//! Statistical differ: paired trial batches on the exact and fast engines.
//!
//! Each *cell* fixes a protocol configuration and an adversary policy; the
//! harness runs `trials` independent executions per engine (deterministic
//! per-trial RNG streams via [`run_trials`](crate::runner::run_trials))
//! and compares the load-bearing
//! metrics with two nonparametric tests: Mann–Whitney U (location shifts)
//! and two-sample Kolmogorov–Smirnov (any distributional difference). Under
//! the null — both engines sample the same distribution — p-values are
//! uniform, so `p < alpha` with `alpha = 1e-3` is a 1-in-1000 fluke per
//! test and treated as an engine divergence.
//!
//! This replaces the ad-hoc mean±tolerance checks the validation tests used
//! to hand-roll, and fixes their confound: the old tests compared
//! `BudgetedPhaseBlocker` (2 budget units per slot, both parties hear
//! noise) on the exact engine against `BudgetedRepBlocker` (1 unit, only
//! the listener) on the fast engine — two different attacks. Here one
//! [`AdversarySpec`] builds the *same* repetition strategy for both
//! engines; the exact engine drives it through
//! [`RepAsSlotAdversary`](rcb_adversary::RepAsSlotAdversary).
//!
//! ## Reading the worst p-value
//!
//! A full default-grid run computes on the order of 150 p-values (16 cells
//! × 4–5 verdict metrics × 2 tests), so under the null the *minimum* of
//! them is routinely in the 0.01–0.05 range — that is what the order
//! statistic of ~100 uniforms looks like, not evidence of drift. The gate
//! only fires below `alpha = 1e-3` per test (grid-wide false-positive rate
//! ≈ 10%, driven to ~0 on a re-run at a different seed). A concrete worked
//! example: the `faults[skew=n1+1]` duel cell once showed `bob_cost`
//! MW-p = 0.0198 — suspicious-looking until checked against both engines'
//! skew semantics, which are byte-for-byte the same strict comparison
//! (`offset < skew_slots`, certified deterministically by
//! `skew_boundary_is_strict_in_both_engines`). Cells known to sit near the
//! verdict threshold can raise their own sample size via
//! [`DuelCell::trial_multiplier`] instead of loosening the gate for the
//! whole grid.

use rcb_core::one_to_n::OneToNParams;
use rcb_mathkit::gof::ks_two_sample;
use rcb_mathkit::hypothesis::mann_whitney_u;

use crate::faults::FaultPlan;
use crate::runner::Parallelism;
use crate::scenario::{
    DuelProtocol, Engine, Outcome, ScenarioSpec, Workload, COHORT_STREAM_SALT, FAST_STREAM_SALT,
};

// `AdversarySpec` was born here and moved up to the scenario layer once
// every consumer (not just the differ) needed it; re-exported so existing
// `conformance::AdversarySpec` paths keep working.
pub use crate::scenario::AdversarySpec;

/// One 1-to-1 (Figure 1) grid cell: an engine-agnostic [`ScenarioSpec`]
/// that [`run_duel_cell`] stamps with each engine in turn (plus the
/// config's seed, trial count, and parallelism).
#[derive(Debug, Clone, PartialEq)]
pub struct DuelCell {
    /// The scenario both engines run. Its `engine`, `seeds`, `trials`, and
    /// `parallelism` fields are placeholders — the harness overwrites them.
    pub spec: ScenarioSpec,
    /// Multiplies `ConformanceConfig::trials` for this cell only. Use > 1
    /// for cells whose p-values historically land near the verdict
    /// threshold: more samples sharpen the test where it matters without
    /// inflating the whole grid's runtime. `0` is treated as `1`.
    pub trial_multiplier: u64,
}

impl DuelCell {
    /// A clean Figure-1 cell: error tolerance ε, start epoch (kept small so
    /// the exact engine stays fast), adversary policy.
    pub fn new(error_rate: f64, start_epoch: u32, adversary: AdversarySpec) -> Self {
        Self {
            spec: ScenarioSpec::duel(DuelProtocol::fig1(error_rate, start_epoch))
                .with_adversary(adversary),
            trial_multiplier: 1,
        }
    }

    /// Adds a non-adversarial fault plan, applied to both engines. Fault
    /// cells are how the differ certifies that the two fault
    /// implementations agree in distribution, not just the clean paths.
    pub fn with_fault(mut self, fault: FaultPlan) -> Self {
        self.spec = self.spec.with_faults(fault);
        self
    }

    pub fn with_trial_multiplier(mut self, trial_multiplier: u64) -> Self {
        self.trial_multiplier = trial_multiplier;
        self
    }

    fn name(&self) -> String {
        let tag = fault_tag(&self.spec.faults);
        let adversary = &self.spec.adversary;
        match &self.spec.workload {
            Workload::Duel(w) => match w.protocol {
                DuelProtocol::Fig1 {
                    epsilon,
                    start_epoch,
                } => format!("duel ε={epsilon} i₀={start_epoch} {adversary}{tag}"),
                DuelProtocol::Ksy { start_epoch } => {
                    format!("duel ksy i₀={start_epoch} {adversary}{tag}")
                }
            },
            Workload::Broadcast(_) | Workload::Stream(_) => {
                unreachable!("DuelCell holds a duel workload")
            }
        }
    }
}

/// One 1-to-n (Figure 2) grid cell; see [`DuelCell`] for the scheme.
#[derive(Debug, Clone, PartialEq)]
pub struct BroadcastCell {
    /// The scenario both engines run (harness stamps engine/seed/trials).
    pub spec: ScenarioSpec,
    /// Per-cell multiplier on `ConformanceConfig::trials`; see
    /// [`DuelCell::trial_multiplier`].
    pub trial_multiplier: u64,
    /// The engine pair under comparison, default `(Exact, Fast)` — the
    /// historical differ. [`BroadcastCell::versus`] swaps in any other
    /// pair; cohort cells compare against `Exact` where the slot-level
    /// engine is affordable (small n) and against `Fast` beyond that.
    pub engines: (Engine, Engine),
}

impl BroadcastCell {
    /// A clean broadcast cell: `n` nodes on `OneToNParams::practical()`
    /// with the given `first_epoch`, node 0 the source.
    pub fn new(n: usize, first_epoch: u32, adversary: AdversarySpec) -> Self {
        let mut params = OneToNParams::practical();
        params.first_epoch = first_epoch;
        Self {
            spec: ScenarioSpec::broadcast_with(params, n).with_adversary(adversary),
            trial_multiplier: 1,
            engines: (Engine::Exact, Engine::Fast),
        }
    }

    /// Adds a non-adversarial fault plan, applied to both engines.
    pub fn with_fault(mut self, fault: FaultPlan) -> Self {
        self.spec = self.spec.with_faults(fault);
        self
    }

    pub fn with_trial_multiplier(mut self, trial_multiplier: u64) -> Self {
        self.trial_multiplier = trial_multiplier;
        self
    }

    /// Compares `reference` against `candidate` instead of the default
    /// `(Exact, Fast)` pair. The report's `exact_*` columns hold the
    /// reference engine, `fast_*` the candidate.
    pub fn versus(mut self, reference: Engine, candidate: Engine) -> Self {
        self.engines = (reference, candidate);
        self
    }

    fn name(&self) -> String {
        let tag = fault_tag(&self.spec.faults);
        let adversary = &self.spec.adversary;
        let pair = if self.engines == (Engine::Exact, Engine::Fast) {
            String::new()
        } else {
            format!(
                " [{} vs {}]",
                engine_tag(self.engines.0),
                engine_tag(self.engines.1)
            )
        };
        match &self.spec.workload {
            Workload::Broadcast(w) => {
                format!(
                    "broadcast n={} i₀={} {adversary}{tag}{pair}",
                    w.n, w.params.first_epoch
                )
            }
            Workload::Duel(_) | Workload::Stream(_) => {
                unreachable!("BroadcastCell holds a broadcast workload")
            }
        }
    }
}

/// Short engine tag for cell names.
fn engine_tag(engine: Engine) -> &'static str {
    match engine {
        Engine::Exact => "exact",
        Engine::Fast => "fast",
        Engine::CohortFast => "cohort",
    }
}

/// Stamps a cell's engine-agnostic spec with one engine plus the harness
/// parameters (seed stream, sample size, parallelism).
fn stamp(
    spec: &ScenarioSpec,
    engine: Engine,
    trial_multiplier: u64,
    cfg: &ConformanceConfig,
) -> ScenarioSpec {
    let seed = match engine {
        Engine::Exact => cfg.seed,
        Engine::Fast => cfg.fast_seed(),
        Engine::CohortFast => cfg.cohort_seed(),
    };
    spec.clone()
        .with_engine(engine)
        .with_seed(seed)
        .with_trials(cfg.trials.saturating_mul(trial_multiplier.max(1)))
        .with_parallelism(cfg.parallelism)
}

/// Harness parameters.
#[derive(Debug, Clone, Copy)]
pub struct ConformanceConfig {
    /// Trials per engine per cell.
    pub trials: u64,
    /// Master seed; the fast engine's batch uses a derived stream.
    pub seed: u64,
    /// Per-test significance level for the divergence verdict.
    pub alpha: f64,
    pub parallelism: Parallelism,
}

impl Default for ConformanceConfig {
    fn default() -> Self {
        Self {
            trials: 200,
            seed: 2014,
            alpha: 1e-3,
            parallelism: Parallelism::Auto,
        }
    }
}

impl ConformanceConfig {
    /// The fast engine must not share trial seeds with the exact engine:
    /// the engines consume different amounts of randomness per trial, and
    /// partially-shared streams would correlate the two samples.
    pub fn fast_seed(&self) -> u64 {
        self.seed ^ FAST_STREAM_SALT
    }

    /// The cohort engine's seed stream, disjoint from both the exact and
    /// fast streams for the same reason as [`ConformanceConfig::fast_seed`].
    pub fn cohort_seed(&self) -> u64 {
        self.seed ^ COHORT_STREAM_SALT
    }
}

/// Two-engine comparison of one metric.
#[derive(Debug, Clone)]
pub struct MetricVerdict {
    pub metric: &'static str,
    pub exact_mean: f64,
    pub fast_mean: f64,
    /// Mann–Whitney two-sided p.
    pub mw_p: f64,
    /// Rank-biserial effect size in `[-1, 1]`.
    pub effect_size: f64,
    /// KS statistic `D` and its p-value.
    pub ks_d: f64,
    pub ks_p: f64,
    /// Advisory metrics are reported but excluded from the divergence
    /// verdict (e.g. `slots`: the fast engines round runs up to phase
    /// boundaries by construction, so small shifts are expected).
    pub advisory: bool,
}

impl MetricVerdict {
    fn compare(metric: &'static str, exact: &[f64], fast: &[f64], advisory: bool) -> Self {
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let degenerate = {
            // Both samples one identical constant: every test statistic is
            // 0/0; that is perfect agreement, not a divergence.
            let first = exact[0];
            exact.iter().chain(fast).all(|&x| x == first)
        };
        let (mw_p, effect_size, ks_d, ks_p) = if degenerate {
            (1.0, 0.0, 0.0, 1.0)
        } else {
            let mw = mann_whitney_u(exact, fast);
            let ks = ks_two_sample(exact, fast);
            (mw.p_two_sided, mw.effect_size, ks.d, ks.p)
        };
        Self {
            metric,
            exact_mean: mean(exact),
            fast_mean: mean(fast),
            mw_p,
            effect_size,
            ks_d,
            ks_p,
            advisory,
        }
    }

    /// The smaller of the two test p-values.
    pub fn worst_p(&self) -> f64 {
        self.mw_p.min(self.ks_p)
    }

    pub fn diverges(&self, alpha: f64) -> bool {
        !self.advisory && self.worst_p() < alpha
    }
}

/// All metric verdicts for one grid cell.
#[derive(Debug, Clone)]
pub struct CellReport {
    pub name: String,
    pub trials: u64,
    pub metrics: Vec<MetricVerdict>,
}

impl CellReport {
    pub fn diverges(&self, alpha: f64) -> bool {
        self.metrics.iter().any(|m| m.diverges(alpha))
    }

    /// Smallest verdict-relevant p in the cell (1.0 if all advisory).
    pub fn worst_p(&self) -> f64 {
        self.metrics
            .iter()
            .filter(|m| !m.advisory)
            .map(MetricVerdict::worst_p)
            .fold(1.0, f64::min)
    }
}

/// The full grid's verdicts.
#[derive(Debug, Clone)]
pub struct GridReport {
    pub alpha: f64,
    pub cells: Vec<CellReport>,
}

impl GridReport {
    pub fn passed(&self) -> bool {
        self.cells.iter().all(|c| !c.diverges(self.alpha))
    }

    pub fn worst_p(&self) -> f64 {
        self.cells
            .iter()
            .map(CellReport::worst_p)
            .fold(1.0, f64::min)
    }

    /// Human-readable table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for cell in &self.cells {
            out.push_str(&format!(
                "cell: {} ({} trials/engine)\n",
                cell.name, cell.trials
            ));
            out.push_str(
                "  metric            exact-mean   fast-mean      MW-p     KS-D      KS-p\n",
            );
            for m in &cell.metrics {
                let flag = if m.diverges(self.alpha) {
                    "  << DIVERGES"
                } else if m.advisory {
                    "  (advisory)"
                } else {
                    ""
                };
                out.push_str(&format!(
                    "  {:<16} {:>11.3} {:>11.3} {:>9.4} {:>8.4} {:>9.4}{}\n",
                    m.metric, m.exact_mean, m.fast_mean, m.mw_p, m.ks_d, m.ks_p, flag
                ));
            }
        }
        out.push_str(&format!(
            "grid {}: worst p = {:.4} (alpha = {})\n",
            if self.passed() { "PASSED" } else { "FAILED" },
            self.worst_p(),
            self.alpha
        ));
        out
    }
}

struct DuelSample {
    alice: f64,
    bob: f64,
    max: f64,
    delivered: f64,
    slots: f64,
}

/// Runs one duel cell on both engines and compares the metrics. Truncated
/// trials are sampled too — hitting a cap is data about the engine, not a
/// failure of the comparison — via the tolerant
/// [`run_batch_raw`](ScenarioSpec::run_batch_raw) path.
pub fn run_duel_cell(cell: &DuelCell, cfg: &ConformanceConfig) -> CellReport {
    let sample = |outcome: Outcome| {
        let o = outcome.into_duel();
        DuelSample {
            alice: o.alice_cost as f64,
            bob: o.bob_cost as f64,
            max: o.max_cost() as f64,
            delivered: o.delivered as u64 as f64,
            slots: o.slots as f64,
        }
    };
    let batch = |engine| {
        stamp(&cell.spec, engine, cell.trial_multiplier, cfg)
            .run_batch_raw()
            .into_iter()
            .map(|(outcome, _)| sample(outcome))
            .collect::<Vec<DuelSample>>()
    };
    let exact = batch(Engine::Exact);
    let fast = batch(Engine::Fast);
    let trials = cfg.trials.saturating_mul(cell.trial_multiplier.max(1));

    let col = |f: fn(&DuelSample) -> f64, v: &[DuelSample]| v.iter().map(f).collect::<Vec<_>>();
    let metrics = vec![
        MetricVerdict::compare(
            "alice_cost",
            &col(|s| s.alice, &exact),
            &col(|s| s.alice, &fast),
            false,
        ),
        MetricVerdict::compare(
            "bob_cost",
            &col(|s| s.bob, &exact),
            &col(|s| s.bob, &fast),
            false,
        ),
        MetricVerdict::compare(
            "max_cost",
            &col(|s| s.max, &exact),
            &col(|s| s.max, &fast),
            false,
        ),
        MetricVerdict::compare(
            "delivered",
            &col(|s| s.delivered, &exact),
            &col(|s| s.delivered, &fast),
            false,
        ),
        MetricVerdict::compare(
            "slots",
            &col(|s| s.slots, &exact),
            &col(|s| s.slots, &fast),
            true,
        ),
    ];
    CellReport {
        name: cell.name(),
        trials,
        metrics,
    }
}

/// ` faults[…]` suffix for cell names; empty for the clean plan.
fn fault_tag(fault: &FaultPlan) -> String {
    if fault.is_none() {
        String::new()
    } else {
        format!(" faults[{fault}]")
    }
}

struct BroadcastSample {
    mean: f64,
    max: f64,
    informed: f64,
    slots: f64,
}

/// Runs one 1-to-n cell on both engines and compares the metrics.
pub fn run_broadcast_cell(cell: &BroadcastCell, cfg: &ConformanceConfig) -> CellReport {
    let n = match &cell.spec.workload {
        Workload::Broadcast(w) => w.n,
        Workload::Duel(_) | Workload::Stream(_) => {
            unreachable!("BroadcastCell holds a broadcast workload")
        }
    };
    let sample = |outcome: Outcome| {
        let o = outcome.into_broadcast();
        BroadcastSample {
            mean: o.mean_cost(),
            max: o.max_cost() as f64,
            informed: o.informed as f64 / n as f64,
            slots: o.slots as f64,
        }
    };
    let batch = |engine| {
        stamp(&cell.spec, engine, cell.trial_multiplier, cfg)
            .run_batch_raw()
            .into_iter()
            .map(|(outcome, _)| sample(outcome))
            .collect::<Vec<BroadcastSample>>()
    };
    let exact = batch(cell.engines.0);
    let fast = batch(cell.engines.1);
    let trials = cfg.trials.saturating_mul(cell.trial_multiplier.max(1));

    let col =
        |f: fn(&BroadcastSample) -> f64, v: &[BroadcastSample]| v.iter().map(f).collect::<Vec<_>>();
    let metrics = vec![
        MetricVerdict::compare(
            "mean_cost",
            &col(|s| s.mean, &exact),
            &col(|s| s.mean, &fast),
            false,
        ),
        MetricVerdict::compare(
            "max_cost",
            &col(|s| s.max, &exact),
            &col(|s| s.max, &fast),
            false,
        ),
        MetricVerdict::compare(
            "informed",
            &col(|s| s.informed, &exact),
            &col(|s| s.informed, &fast),
            false,
        ),
        MetricVerdict::compare(
            "slots",
            &col(|s| s.slots, &exact),
            &col(|s| s.slots, &fast),
            true,
        ),
    ];
    CellReport {
        name: cell.name(),
        trials,
        metrics,
    }
}

/// The default (profile × adversary × budget × fault × engine-pair) grid:
/// unjammed
/// baselines, blanket blockers at two budgets, a partial-fraction blocker,
/// a keep-alive schedule, and fault-injection cells (loss under jamming,
/// battery brownout, clock skew, crash–restart) for both protocol
/// families.
pub fn default_grid() -> (Vec<DuelCell>, Vec<BroadcastCell>) {
    let duel = |adversary| DuelCell::new(0.05, 6, adversary);
    let duels = vec![
        duel(AdversarySpec::NoJam),
        duel(AdversarySpec::Budgeted {
            budget: 512,
            fraction: 1.0,
        }),
        duel(AdversarySpec::Budgeted {
            budget: 2048,
            fraction: 1.0,
        }),
        duel(AdversarySpec::Budgeted {
            budget: 1024,
            fraction: 0.5,
        }),
        duel(AdversarySpec::KeepAlive {
            budget: 1024,
            fraction: 1.0,
        }),
        duel(AdversarySpec::Budgeted {
            budget: 512,
            fraction: 1.0,
        })
        .with_fault(FaultPlan::none().with_loss(0.15)),
        duel(AdversarySpec::NoJam).with_fault(FaultPlan::none().with_battery(64)),
        duel(AdversarySpec::NoJam)
            .with_fault(FaultPlan::none().with_skew(1, 1))
            // This cell's bob_cost MW-p once landed at 0.0198 — within the
            // expected min-of-~100-uniforms range (see module docs), and
            // the boundary semantics are certified identical by a
            // deterministic test. The larger sample keeps its p-values
            // comfortably away from the verdict threshold anyway.
            .with_trial_multiplier(4),
    ];
    let broadcast = |adversary| BroadcastCell::new(5, 4, adversary);
    let broadcasts = vec![
        broadcast(AdversarySpec::NoJam),
        broadcast(AdversarySpec::Budgeted {
            budget: 256,
            fraction: 1.0,
        }),
        broadcast(AdversarySpec::NoJam).with_fault(FaultPlan::none().with_loss(0.15)),
        broadcast(AdversarySpec::NoJam).with_fault(FaultPlan::none().with_crash(1, 2, 6, true)),
        // Cohort-engine cells. At n = 8 the slot-level exact engine is
        // still cheap, so the cohort engine faces the ground truth
        // directly; at n ∈ {64, 256} it is differed against the fast
        // engine, which the cells above have already certified.
        BroadcastCell::new(8, 4, AdversarySpec::NoJam).versus(Engine::Exact, Engine::CohortFast),
        BroadcastCell::new(
            64,
            4,
            AdversarySpec::Budgeted {
                budget: 4096,
                fraction: 1.0,
            },
        )
        .versus(Engine::Fast, Engine::CohortFast),
        BroadcastCell::new(256, 4, AdversarySpec::NoJam).versus(Engine::Fast, Engine::CohortFast),
        BroadcastCell::new(64, 4, AdversarySpec::NoJam)
            .with_fault(FaultPlan::none().with_crash(1, 2, 6, true))
            .versus(Engine::Fast, Engine::CohortFast),
    ];
    (duels, broadcasts)
}

/// Runs a grid of cells and collects the verdicts. Cells are sharded
/// across cores by the deterministic executor
/// ([`run_cells`](crate::executor::run_cells)) at `cfg.parallelism` —
/// duels first, then broadcasts, report order unchanged. Inside a worker
/// the cells' own `Auto` batches degrade to sequential, so the grid keeps
/// one parallel tier; with `Fixed(1)` the whole run is sequential and
/// byte-identical to the historical serial loop (each cell's per-trial
/// streams are seed-derived either way).
pub fn run_grid(
    duels: &[DuelCell],
    broadcasts: &[BroadcastCell],
    cfg: &ConformanceConfig,
) -> GridReport {
    enum GridCell<'a> {
        Duel(&'a DuelCell),
        Broadcast(&'a BroadcastCell),
    }
    let work: Vec<GridCell> = duels
        .iter()
        .map(GridCell::Duel)
        .chain(broadcasts.iter().map(GridCell::Broadcast))
        .collect();
    let cells = crate::executor::run_cells(&work, cfg.parallelism, |_, cell| match cell {
        GridCell::Duel(c) => run_duel_cell(c, cfg),
        GridCell::Broadcast(c) => run_broadcast_cell(c, cfg),
    });
    GridReport {
        alpha: cfg.alpha,
        cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcb_adversary::rep_strategies::NoJamRep;
    use rcb_adversary::RepAsSlotAdversary;
    use rcb_channel::partition::Partition;
    use rcb_core::one_to_one::profile::Fig1Profile;
    use rcb_core::one_to_one::schedule::DuelSchedule;
    use rcb_core::one_to_one::slot::{AliceProtocol, BobProtocol};
    use rcb_core::protocol::SlotProtocol;

    use crate::duel::{run_duel_faulted, DuelConfig};
    use crate::exact::{run_exact_faulted, ExactConfig};
    use crate::runner::run_trials;

    fn small_cfg() -> ConformanceConfig {
        ConformanceConfig {
            trials: 40,
            seed: 7,
            alpha: 1e-3,
            parallelism: Parallelism::Fixed(1),
        }
    }

    #[test]
    fn unjammed_duel_cell_agrees() {
        let cell = DuelCell::new(0.05, 6, AdversarySpec::NoJam);
        let report = run_duel_cell(&cell, &small_cfg());
        assert!(
            !report.diverges(1e-3),
            "engines diverge on an unjammed cell:\n{:#?}",
            report
        );
    }

    #[test]
    fn jammed_duel_cell_agrees() {
        let cell = DuelCell::new(
            0.05,
            6,
            AdversarySpec::Budgeted {
                budget: 512,
                fraction: 1.0,
            },
        );
        let report = run_duel_cell(&cell, &small_cfg());
        assert!(
            !report.diverges(1e-3),
            "engines diverge under jamming:\n{:#?}",
            report
        );
    }

    #[test]
    fn lossy_duel_cell_agrees() {
        // The fault implementations are engine-specific (receiver
        // condition vs. sampled-event coin); the differ must certify they
        // sample the same distribution.
        let cell = DuelCell::new(
            0.05,
            6,
            AdversarySpec::Budgeted {
                budget: 512,
                fraction: 1.0,
            },
        )
        .with_fault(FaultPlan::none().with_loss(0.15));
        let report = run_duel_cell(&cell, &small_cfg());
        assert!(report.name.contains("faults[loss=0.15]"), "{}", report.name);
        assert!(
            !report.diverges(1e-3),
            "engines diverge on a lossy cell:\n{:#?}",
            report
        );
    }

    #[test]
    fn crash_broadcast_cell_agrees() {
        let cell = BroadcastCell::new(5, 4, AdversarySpec::NoJam)
            .with_fault(FaultPlan::none().with_crash(1, 2, 6, true));
        let cfg = ConformanceConfig {
            trials: 25,
            ..small_cfg()
        };
        let report = run_broadcast_cell(&cell, &cfg);
        assert!(
            !report.diverges(1e-3),
            "engines diverge on a crash–restart cell:\n{:#?}",
            report
        );
    }

    #[test]
    fn cohort_vs_exact_broadcast_cell_agrees() {
        // The cohort engine against ground truth at a population small
        // enough for the slot-level engine.
        let cell = BroadcastCell::new(8, 4, AdversarySpec::NoJam)
            .versus(Engine::Exact, Engine::CohortFast);
        let cfg = ConformanceConfig {
            trials: 30,
            ..small_cfg()
        };
        let report = run_broadcast_cell(&cell, &cfg);
        assert!(report.name.contains("[exact vs cohort]"), "{}", report.name);
        assert!(
            !report.diverges(1e-3),
            "cohort engine diverges from exact:\n{:#?}",
            report
        );
    }

    #[test]
    fn cohort_vs_fast_jammed_broadcast_cell_agrees() {
        let cell = BroadcastCell::new(
            64,
            4,
            AdversarySpec::Budgeted {
                budget: 4096,
                fraction: 1.0,
            },
        )
        .versus(Engine::Fast, Engine::CohortFast);
        let cfg = ConformanceConfig {
            trials: 25,
            ..small_cfg()
        };
        let report = run_broadcast_cell(&cell, &cfg);
        assert!(report.name.contains("[fast vs cohort]"), "{}", report.name);
        assert!(
            !report.diverges(1e-3),
            "cohort engine diverges from fast under jamming:\n{:#?}",
            report
        );
    }

    #[test]
    fn cohort_vs_fast_crash_cell_agrees() {
        // Crash targets are tracked individually by the cohort engine;
        // this certifies the materialized path against the fast engine.
        let cell = BroadcastCell::new(64, 4, AdversarySpec::NoJam)
            .with_fault(FaultPlan::none().with_crash(1, 2, 6, true))
            .versus(Engine::Fast, Engine::CohortFast);
        let cfg = ConformanceConfig {
            trials: 25,
            ..small_cfg()
        };
        let report = run_broadcast_cell(&cell, &cfg);
        assert!(
            !report.diverges(1e-3),
            "cohort engine diverges from fast on a crash–restart cell:\n{:#?}",
            report
        );
    }

    #[test]
    fn differ_detects_a_planted_divergence() {
        // Power check: exact runs jammed, fast runs unjammed. The jammed
        // runs burn far more energy, so the cost metrics must reject hard.
        // (Built by hand since the public API deliberately runs one spec on
        // both engines.)
        let cfg = small_cfg();
        let profile = Fig1Profile::with_start_epoch(0.05, 6);
        let jammed = AdversarySpec::Budgeted {
            budget: 4096,
            fraction: 1.0,
        };
        let exact: Vec<f64> = run_trials(cfg.trials, cfg.seed, cfg.parallelism, |_, rng| {
            let mut alice = AliceProtocol::new(profile);
            let mut bob = BobProtocol::new(profile);
            let schedule = DuelSchedule::new(6);
            let partition = Partition::pair();
            let mut adv = RepAsSlotAdversary::duel(jammed.build(0));
            let out = run_exact_faulted(
                &mut [&mut alice, &mut bob],
                &mut adv,
                &schedule,
                &partition,
                rng,
                ExactConfig::default(),
                None,
                &FaultPlan::none(),
            );
            out.ledger.max_node_cost() as f64
        });
        let fast: Vec<f64> = run_trials(cfg.trials, cfg.fast_seed(), cfg.parallelism, |_, rng| {
            let mut adv = AdversarySpec::NoJam.build(0);
            run_duel_faulted(
                &profile,
                &mut adv,
                rng,
                DuelConfig::default(),
                &FaultPlan::none(),
            )
            .max_cost() as f64
        });
        let verdict = MetricVerdict::compare("max_cost", &exact, &fast, false);
        assert!(
            verdict.diverges(1e-3),
            "differ has no power against a 4096-budget mismatch: {verdict:#?}"
        );
    }

    #[test]
    fn reports_are_deterministic() {
        let cell = DuelCell::new(
            0.05,
            6,
            AdversarySpec::Budgeted {
                budget: 256,
                fraction: 1.0,
            },
        );
        let cfg = ConformanceConfig {
            trials: 20,
            ..small_cfg()
        };
        let a = run_duel_cell(&cell, &cfg);
        let b = run_duel_cell(&cell, &cfg);
        for (ma, mb) in a.metrics.iter().zip(&b.metrics) {
            assert_eq!(ma.mw_p, mb.mw_p, "{}", ma.metric);
            assert_eq!(ma.ks_d, mb.ks_d, "{}", ma.metric);
        }
    }

    #[test]
    fn grid_verdicts_are_identical_across_parallelism() {
        // The executor shards cells, not trials; every cell's trial
        // streams are seed-derived, so the grid's statistics must be
        // bit-identical at any thread count.
        let duels = vec![DuelCell::new(
            0.05,
            6,
            AdversarySpec::Budgeted {
                budget: 256,
                fraction: 1.0,
            },
        )];
        let broadcasts = vec![BroadcastCell::new(5, 4, AdversarySpec::NoJam)];
        let cfg = ConformanceConfig {
            trials: 15,
            ..small_cfg()
        };
        let grid = |parallelism| {
            run_grid(
                &duels,
                &broadcasts,
                &ConformanceConfig { parallelism, ..cfg },
            )
        };
        let one = grid(Parallelism::Fixed(1));
        let four = grid(Parallelism::Fixed(4));
        let auto = grid(Parallelism::Auto);
        assert_eq!(one.cells.len(), 2);
        for (a, b, c) in one
            .cells
            .iter()
            .zip(&four.cells)
            .zip(&auto.cells)
            .map(|((a, b), c)| (a, b, c))
        {
            assert_eq!(a.name, b.name);
            assert_eq!(a.name, c.name);
            for (ma, (mb, mc)) in a.metrics.iter().zip(b.metrics.iter().zip(&c.metrics)) {
                assert_eq!(ma.mw_p, mb.mw_p, "{}: {}", a.name, ma.metric);
                assert_eq!(ma.ks_d, mc.ks_d, "{}: {}", a.name, ma.metric);
                assert_eq!(ma.exact_mean, mb.exact_mean, "{}: {}", a.name, ma.metric);
                assert_eq!(ma.fast_mean, mc.fast_mean, "{}: {}", a.name, ma.metric);
            }
        }
    }

    #[test]
    fn degenerate_constant_metrics_do_not_reject() {
        let v = MetricVerdict::compare("delivered", &[1.0; 30], &[1.0; 30], false);
        assert_eq!(v.worst_p(), 1.0);
        assert!(!v.diverges(0.05));
    }

    #[test]
    fn trial_multiplier_scales_the_cell_sample() {
        let cell = DuelCell::new(0.05, 6, AdversarySpec::NoJam).with_trial_multiplier(3);
        let cfg = ConformanceConfig {
            trials: 10,
            ..small_cfg()
        };
        let report = run_duel_cell(&cell, &cfg);
        assert_eq!(report.trials, 30, "multiplier must scale the sample");
        assert!(report.metrics.iter().all(|m| m.mw_p.is_finite()));
    }

    /// Both engines implement `skew = s` as the strict mask
    /// `offset < s` within each period. This pins the convention down
    /// deterministically: an always-on sender plus a listener that records
    /// its first decoded slot, run through the exact engine, must agree
    /// slot-for-slot with the fast duel engine's delivery slot at every
    /// skew value — including both boundary cases (s = 0 masks nothing,
    /// s = period length masks everything). This is the certificate behind
    /// dismissing the `faults[skew=n1+1]` cell's near-threshold p-value as
    /// a multiple-comparison artifact rather than an off-by-one.
    #[test]
    fn skew_boundary_is_strict_in_both_engines() {
        use rcb_channel::slot::{Action, Reception};
        use rcb_channel::{Payload, Slot};
        use rcb_core::one_to_one::profile::DuelProfile;
        use rcb_core::protocol::{PeriodLoc, Schedule};
        use rcb_mathkit::rng::RcbRng;

        const PERIOD: u64 = 4;
        const HORIZON: u64 = 2 * PERIOD;

        struct FourSlotPeriods;
        impl Schedule for FourSlotPeriods {
            fn locate(&self, slot: Slot) -> PeriodLoc {
                PeriodLoc {
                    period: slot / PERIOD,
                    offset: slot % PERIOD,
                    len: PERIOD,
                }
            }
        }

        #[derive(Default)]
        struct MeteredSender {
            slot: u64,
        }
        impl SlotProtocol for MeteredSender {
            fn act(&mut self, _rng: &mut RcbRng) -> Action {
                if self.is_done() {
                    Action::Sleep
                } else {
                    Action::Send(Payload::message())
                }
            }
            fn end_slot(&mut self, _heard: Option<&Reception>) {
                self.slot += 1;
            }
            fn is_done(&self) -> bool {
                self.slot >= HORIZON
            }
            fn received_message(&self) -> bool {
                true
            }
        }

        #[derive(Default)]
        struct BoundaryProbe {
            slot: u64,
            first_decode: Option<u64>,
        }
        impl SlotProtocol for BoundaryProbe {
            fn act(&mut self, _rng: &mut RcbRng) -> Action {
                if self.is_done() {
                    Action::Sleep
                } else {
                    Action::Listen
                }
            }
            fn end_slot(&mut self, heard: Option<&Reception>) {
                if let Some(r) = heard {
                    if r.is_message() && self.first_decode.is_none() {
                        self.first_decode = Some(self.slot);
                    }
                }
                self.slot += 1;
            }
            fn is_done(&self) -> bool {
                self.slot >= HORIZON
            }
            fn received_message(&self) -> bool {
                self.first_decode.is_some()
            }
        }

        struct AlwaysOnProfile;
        impl DuelProfile for AlwaysOnProfile {
            fn start_epoch(&self) -> u32 {
                1
            }
            fn rate(&self, _epoch: u32) -> f64 {
                1.0
            }
            fn noise_threshold(&self, _epoch: u32) -> f64 {
                100.0
            }
            fn phase_len(&self, _epoch: u32) -> u64 {
                PERIOD
            }
        }

        let exact_first_decode = |s: u64| {
            let mut sender = MeteredSender::default();
            let mut probe = BoundaryProbe::default();
            let mut adv = RepAsSlotAdversary::duel(Box::new(NoJamRep));
            let mut rng = RcbRng::new(9);
            run_exact_faulted(
                &mut [&mut sender, &mut probe],
                &mut adv,
                &FourSlotPeriods,
                &Partition::pair(),
                &mut rng,
                ExactConfig::default(),
                None,
                &FaultPlan::none().with_skew(1, s),
            );
            probe.first_decode
        };
        let fast_delivery = |s: u64| {
            let mut rng = RcbRng::new(9);
            let mut adv = NoJamRep;
            run_duel_faulted(
                &AlwaysOnProfile,
                &mut adv,
                &mut rng,
                DuelConfig::default(),
                &FaultPlan::none().with_skew(1, s),
            )
            .delivery_slot
        };
        for s in 0..=PERIOD {
            let exact = exact_first_decode(s);
            let fast = fast_delivery(s);
            assert_eq!(exact, fast, "skew boundary disagrees at s = {s}");
            // And the shared convention itself: first decode at offset s.
            assert_eq!(exact, (s < PERIOD).then_some(s), "s = {s}");
        }
    }

    #[test]
    fn render_mentions_every_cell() {
        let report = GridReport {
            alpha: 1e-3,
            cells: vec![CellReport {
                name: "duel test-cell".into(),
                trials: 5,
                metrics: vec![MetricVerdict::compare(
                    "delivered",
                    &[1.0, 1.0, 0.0],
                    &[1.0, 0.0, 1.0],
                    false,
                )],
            }],
        };
        let text = report.render();
        assert!(text.contains("test-cell"));
        assert!(text.contains("delivered"));
        assert!(text.contains("PASSED"));
    }
}
