//! Measurement games for the lower bounds (Theorems 2 and 5).
//!
//! * [`product_game`] — Theorem 2: runs a δ-split oblivious protocol
//!   against the threshold adversary and measures `E(A)·E(B)/T`, which the
//!   theorem pins to `≥ 1 − O(ε)` (and the normal-form analysis to exactly
//!   1 for boundary pairs).
//! * [`golden_ratio_game`] — Theorem 5: for each split δ the adversary
//!   plays the better of its two scenarios — jam Bob (cost exponent δ for
//!   the good nodes) or impersonate Bob (cost exponent `(1−δ)/δ`) — and the
//!   measured worst-case exponent is minimized at `δ = φ−1 ≈ 0.618`.

use rcb_adversary::spoof::{predicted_exponent, SpoofScenario};
use rcb_baselines::oblivious::ConstantRatePair;
use rcb_mathkit::rng::RcbRng;
use rcb_mathkit::stats::RunningStats;
use serde::{Deserialize, Serialize};

/// Result of the Theorem 2 product game for one split δ.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ProductGameRow {
    pub delta: f64,
    pub budget: u64,
    /// Monte-Carlo mean of Alice's cost (0/1 model).
    pub mean_a: f64,
    /// Monte-Carlo mean of Bob's cost (0/1 model).
    pub mean_b: f64,
    /// `mean_a · mean_b / budget` — Theorem 2 says ≥ 1 − O(ε).
    pub product_over_t: f64,
    /// Closed-form (fractional-model) product over T, for comparison.
    pub closed_product_over_t: f64,
    pub trials: u64,
}

/// Runs the Theorem 2 game: `trials` Monte-Carlo executions of the δ-split
/// boundary pair against a budget-`T` threshold adversary.
pub fn product_game(budget: u64, delta: f64, trials: u64, rng: &mut RcbRng) -> ProductGameRow {
    let pair = ConstantRatePair::from_split(budget, delta);
    let closed = pair.expected_costs(budget);
    let mut stats_a = RunningStats::new();
    let mut stats_b = RunningStats::new();
    // Cap generously: expected duration is T slots; 64·T bounds the tail.
    let max_slots = budget.saturating_mul(64).max(1 << 20);
    for _ in 0..trials {
        let (a, b, _slots, _jammed) = pair.simulate(budget, max_slots, rng);
        stats_a.push(a as f64);
        stats_b.push(b as f64);
    }
    ProductGameRow {
        delta,
        budget,
        mean_a: stats_a.mean(),
        mean_b: stats_b.mean(),
        product_over_t: stats_a.mean() * stats_b.mean() / budget as f64,
        closed_product_over_t: closed.expected_a * closed.expected_b / budget as f64,
        trials,
    }
}

/// Result of the Theorem 5 game for one split δ.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct GoldenRatioRow {
    pub delta: f64,
    pub announced_budget: u64,
    /// Scenario (i): measured `log(max good cost)/log(T)` with `T` = the
    /// announced jamming budget.
    pub exponent_jam: f64,
    /// Scenario (ii): measured `log(Alice cost)/log(T)` with `T` = the
    /// adversary's simulation cost (it *is* Bob).
    pub exponent_spoof: f64,
    /// The adversary plays the better scenario.
    pub worst_exponent: f64,
    /// Which scenario the adversary picks.
    pub picked: SpoofScenario,
    /// The proof's prediction `max{δ, (1−δ)/δ}`.
    pub predicted: f64,
    pub trials: u64,
}

/// Runs the Theorem 5 game for a δ-split protocol at announced budget `T̃`.
///
/// Scenario (i): the threshold adversary jams with budget `T̃`; the binding
/// good-node cost is Bob's `≈ T̃^δ`. Scenario (ii): there is no Bob — the
/// adversary simulates his listening schedule at cost `B ≈ T̃^δ` while Alice
/// spends `≈ T̃^(1−δ)`; measured against `T = B` her exponent is
/// `(1−δ)/δ`. Alice cannot distinguish the scenarios (she cannot see whether
/// Bob's group is jammed), so the adversary freely picks the worse one.
pub fn golden_ratio_game(
    announced_budget: u64,
    delta: f64,
    trials: u64,
    rng: &mut RcbRng,
) -> GoldenRatioRow {
    let pair = ConstantRatePair::from_split(announced_budget, delta);
    let max_slots = announced_budget.saturating_mul(64).max(1 << 20);

    // Scenario (i): jam-Bob. The boundary pair is never actually jammed
    // (a·b = 1/T̃), so the execution is clean; the adversary's *budget* is
    // the T the lower bound measures against.
    let mut cost_a1 = RunningStats::new();
    let mut cost_b1 = RunningStats::new();
    for _ in 0..trials {
        let (a, b, _, _) = pair.simulate(announced_budget, max_slots, rng);
        cost_a1.push(a as f64);
        cost_b1.push(b as f64);
    }
    let t1 = announced_budget as f64;
    let exponent_jam = cost_a1.mean().max(cost_b1.mean()).max(1.0).ln() / t1.ln();

    // Scenario (ii): impersonate-Bob. Same execution distribution (Alice
    // cannot tell), but the adversary pays Bob's side and T = B.
    let mut cost_a2 = RunningStats::new();
    let mut adv_cost = RunningStats::new();
    for _ in 0..trials {
        let (a, b, _, _) = pair.simulate(announced_budget, max_slots, rng);
        cost_a2.push(a as f64);
        adv_cost.push(b as f64);
    }
    let t2 = adv_cost.mean().max(2.0);
    let exponent_spoof = cost_a2.mean().max(1.0).ln() / t2.ln();

    let (worst_exponent, picked) = if exponent_jam >= exponent_spoof {
        (exponent_jam, SpoofScenario::JamBob)
    } else {
        (exponent_spoof, SpoofScenario::ImpersonateBob)
    };
    GoldenRatioRow {
        delta,
        announced_budget,
        exponent_jam,
        exponent_spoof,
        worst_exponent,
        picked,
        predicted: predicted_exponent(delta),
        trials,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcb_mathkit::PHI_MINUS_ONE;

    #[test]
    fn product_game_pins_product_to_t() {
        let mut rng = RcbRng::new(1);
        for delta in [0.4, 0.5, 0.65] {
            let row = product_game(1024, delta, 1500, &mut rng);
            assert!(
                (row.product_over_t - 1.0).abs() < 0.1,
                "δ = {delta}: product/T = {}",
                row.product_over_t
            );
            assert!((row.closed_product_over_t - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn product_game_splits_costs_by_delta() {
        let mut rng = RcbRng::new(2);
        let t = 1u64 << 12;
        let row = product_game(t, 0.75, 500, &mut rng);
        // E(B) ≈ T^0.75 ≫ E(A) ≈ T^0.25.
        assert!(row.mean_b > row.mean_a * 10.0);
    }

    #[test]
    fn golden_ratio_game_matches_prediction() {
        let mut rng = RcbRng::new(3);
        let t = 1u64 << 12;
        for delta in [0.45, PHI_MINUS_ONE, 0.8] {
            let row = golden_ratio_game(t, delta, 400, &mut rng);
            assert!(
                (row.worst_exponent - row.predicted).abs() < 0.12,
                "δ = {delta}: measured {} vs predicted {}",
                row.worst_exponent,
                row.predicted
            );
        }
    }

    #[test]
    fn golden_ratio_point_is_the_minimum() {
        let mut rng = RcbRng::new(4);
        let t = 1u64 << 12;
        let at_phi = golden_ratio_game(t, PHI_MINUS_ONE, 600, &mut rng).worst_exponent;
        for delta in [0.40, 0.50, 0.75, 0.85] {
            let other = golden_ratio_game(t, delta, 600, &mut rng).worst_exponent;
            assert!(
                other > at_phi - 0.03,
                "δ = {delta} ({other}) should not beat φ−1 ({at_phi})"
            );
        }
    }

    #[test]
    fn scenario_choice_flips_around_phi() {
        let mut rng = RcbRng::new(5);
        let t = 1u64 << 12;
        let low = golden_ratio_game(t, 0.45, 400, &mut rng);
        assert_eq!(low.picked, SpoofScenario::ImpersonateBob);
        let high = golden_ratio_game(t, 0.85, 400, &mut rng);
        assert_eq!(high.picked, SpoofScenario::JamBob);
    }
}
