//! Typed harness failures: budget exhaustion and poisoned trials.
//!
//! The engines historically reported hitting a hard cap only through a
//! `truncated`/`completed` flag that downstream aggregation could (and in
//! early experiment code, did) silently average over. The `*_checked` entry
//! points surface the same condition as a [`SimError`] so sweeps can route
//! a runaway cell to an error column instead of folding a truncated run
//! into a cost mean.

use std::fmt;

/// An engine hit a hard resource cap before every node halted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimError {
    /// The slot cap was reached with at least one node still running.
    SlotBudgetExhausted {
        /// The configured cap.
        max_slots: u64,
        /// Slots actually executed (= `max_slots` for the exact engine;
        /// the fast engines stop at the end of the period that crossed it).
        slots: u64,
    },
    /// The epoch cap was reached with at least one node still running. The
    /// fast engines bound epochs rather than raw slots (a single epoch-62
    /// phase already exceeds 2^62 slots).
    EpochBudgetExhausted {
        /// The configured cap (the fixed 62 for the duel engine).
        max_epoch: u32,
        /// Slots executed before giving up.
        slots: u64,
    },
    /// A cooperative wall-clock deadline (or cancellation flag) fired
    /// before the run finished. Unlike the budget variants this is *not*
    /// deterministic — where the cut lands depends on machine speed — so
    /// results carrying it are reported but never journaled; a resumed run
    /// re-executes them from the seed fold.
    DeadlineExceeded {
        /// Slots executed before the cancellation checkpoint fired (0 when
        /// the deadline was already exceeded between trials, i.e. the
        /// trial never started).
        slots: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::SlotBudgetExhausted { max_slots, slots } => write!(
                f,
                "slot budget exhausted: {slots} slots executed against a cap of {max_slots} \
                 with nodes still running"
            ),
            SimError::EpochBudgetExhausted { max_epoch, slots } => write!(
                f,
                "epoch budget exhausted: reached epoch cap {max_epoch} after {slots} slots \
                 with nodes still running"
            ),
            SimError::DeadlineExceeded { slots } => write!(
                f,
                "deadline exceeded: cooperative cancellation after {slots} slots \
                 with nodes still running"
            ),
        }
    }
}

impl SimError {
    /// Serializes for journal payloads; [`SimError::from_json`] inverts.
    pub fn to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        match *self {
            SimError::SlotBudgetExhausted { max_slots, slots } => Json::obj(vec![
                ("kind", Json::Str("slot_budget".into())),
                ("max_slots", Json::Str(max_slots.to_string())),
                ("slots", Json::Str(slots.to_string())),
            ]),
            SimError::EpochBudgetExhausted { max_epoch, slots } => Json::obj(vec![
                ("kind", Json::Str("epoch_budget".into())),
                ("max_epoch", Json::Num(f64::from(max_epoch))),
                ("slots", Json::Str(slots.to_string())),
            ]),
            SimError::DeadlineExceeded { slots } => Json::obj(vec![
                ("kind", Json::Str("deadline".into())),
                ("slots", Json::Str(slots.to_string())),
            ]),
        }
    }

    /// Inverse of [`SimError::to_json`].
    pub fn from_json(value: &crate::json::Json) -> Result<SimError, String> {
        let u64_field = |key: &str| -> Result<u64, String> {
            value
                .get(key)
                .and_then(|v| v.as_str())
                .ok_or_else(|| format!("SimError json missing `{key}`"))?
                .parse::<u64>()
                .map_err(|e| format!("SimError `{key}`: {e}"))
        };
        match value.get("kind").and_then(|k| k.as_str()) {
            Some("slot_budget") => Ok(SimError::SlotBudgetExhausted {
                max_slots: u64_field("max_slots")?,
                slots: u64_field("slots")?,
            }),
            Some("epoch_budget") => Ok(SimError::EpochBudgetExhausted {
                max_epoch: value
                    .get("max_epoch")
                    .and_then(|v| v.as_u64())
                    .ok_or("SimError json missing `max_epoch`")? as u32,
                slots: u64_field("slots")?,
            }),
            Some("deadline") => Ok(SimError::DeadlineExceeded {
                slots: u64_field("slots")?,
            }),
            other => Err(format!("unknown SimError kind {other:?}")),
        }
    }
}

impl std::error::Error for SimError {}

/// A trial that panicked inside
/// [`run_trials_isolated`](crate::runner::run_trials_isolated).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrialFailure {
    /// The trial index whose closure panicked.
    pub trial: u64,
    /// The stringified panic payload; non-string payloads are rendered as
    /// `TypeName: value` for the probed types (see `runner::panic_payload`).
    pub payload: String,
    /// Same-seed attempts made before giving up (1 = no retry policy).
    pub attempts: u32,
}

impl TrialFailure {
    /// A failure recorded on the first and only attempt.
    pub fn new(trial: u64, payload: String) -> TrialFailure {
        TrialFailure {
            trial,
            payload,
            attempts: 1,
        }
    }
}

impl fmt::Display for TrialFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trial {} panicked: {}", self.trial, self.payload)?;
        if self.attempts > 1 {
            write!(f, " ({} same-seed attempts)", self.attempts)?;
        }
        Ok(())
    }
}

impl std::error::Error for TrialFailure {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_the_caps() {
        let e = SimError::SlotBudgetExhausted {
            max_slots: 10,
            slots: 10,
        };
        assert!(e.to_string().contains("cap of 10"));
        let e = SimError::EpochBudgetExhausted {
            max_epoch: 62,
            slots: 99,
        };
        assert!(e.to_string().contains("62"));
        let e = SimError::DeadlineExceeded { slots: 7 };
        assert!(e.to_string().contains("deadline"));
        let t = TrialFailure::new(3, "boom".into());
        assert!(t.to_string().contains("trial 3"));
        assert!(t.to_string().contains("boom"));
        assert!(!t.to_string().contains("attempts"), "no retry note at 1");
        let t = TrialFailure {
            attempts: 3,
            ..TrialFailure::new(3, "boom".into())
        };
        assert!(t.to_string().contains("3 same-seed attempts"));
    }

    #[test]
    fn sim_errors_round_trip_through_json() {
        for e in [
            SimError::SlotBudgetExhausted {
                max_slots: 1 << 40,
                slots: u64::MAX - 1,
            },
            SimError::EpochBudgetExhausted {
                max_epoch: 62,
                slots: 12345,
            },
            SimError::DeadlineExceeded { slots: 0 },
        ] {
            let back = SimError::from_json(&e.to_json()).expect("round trip");
            assert_eq!(e, back);
        }
        assert!(SimError::from_json(&crate::json::Json::Null).is_err());
    }
}
