//! Typed harness failures: budget exhaustion and poisoned trials.
//!
//! The engines historically reported hitting a hard cap only through a
//! `truncated`/`completed` flag that downstream aggregation could (and in
//! early experiment code, did) silently average over. The `*_checked` entry
//! points surface the same condition as a [`SimError`] so sweeps can route
//! a runaway cell to an error column instead of folding a truncated run
//! into a cost mean.

use std::fmt;

/// An engine hit a hard resource cap before every node halted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimError {
    /// The slot cap was reached with at least one node still running.
    SlotBudgetExhausted {
        /// The configured cap.
        max_slots: u64,
        /// Slots actually executed (= `max_slots` for the exact engine;
        /// the fast engines stop at the end of the period that crossed it).
        slots: u64,
    },
    /// The epoch cap was reached with at least one node still running. The
    /// fast engines bound epochs rather than raw slots (a single epoch-62
    /// phase already exceeds 2^62 slots).
    EpochBudgetExhausted {
        /// The configured cap (the fixed 62 for the duel engine).
        max_epoch: u32,
        /// Slots executed before giving up.
        slots: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::SlotBudgetExhausted { max_slots, slots } => write!(
                f,
                "slot budget exhausted: {slots} slots executed against a cap of {max_slots} \
                 with nodes still running"
            ),
            SimError::EpochBudgetExhausted { max_epoch, slots } => write!(
                f,
                "epoch budget exhausted: reached epoch cap {max_epoch} after {slots} slots \
                 with nodes still running"
            ),
        }
    }
}

impl std::error::Error for SimError {}

/// A trial that panicked inside
/// [`run_trials_isolated`](crate::runner::run_trials_isolated).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrialFailure {
    /// The trial index whose closure panicked.
    pub trial: u64,
    /// The stringified panic payload.
    pub payload: String,
}

impl fmt::Display for TrialFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trial {} panicked: {}", self.trial, self.payload)
    }
}

impl std::error::Error for TrialFailure {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_the_caps() {
        let e = SimError::SlotBudgetExhausted {
            max_slots: 10,
            slots: 10,
        };
        assert!(e.to_string().contains("cap of 10"));
        let e = SimError::EpochBudgetExhausted {
            max_epoch: 62,
            slots: 99,
        };
        assert!(e.to_string().contains("62"));
        let t = TrialFailure {
            trial: 3,
            payload: "boom".into(),
        };
        assert!(t.to_string().contains("trial 3"));
        assert!(t.to_string().contains("boom"));
    }
}
