//! Parallel Monte-Carlo trial runner.
//!
//! Expected-cost estimates need hundreds of independent executions per
//! parameter cell. [`run_trials`] fans trial indices out over `std::thread`
//! scoped workers; every trial gets its own deterministic RNG stream
//! derived from `(master_seed, trial_index)` via
//! [`SeedSequence`], so results are
//! bit-identical regardless of thread count or scheduling.

use rcb_mathkit::rng::{RcbRng, SeedSequence};
use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::error::TrialFailure;

thread_local! {
    /// Set while this OS thread is executing trials as a `run_trials`
    /// worker. Nested runners consult it so that `Parallelism::Auto`
    /// inside a trial closure (the conformance grid does this per cell)
    /// degrades to sequential instead of spawning cores² threads.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Marks the current thread as a worker for the rest of its lifetime.
/// Worker threads are short-lived scoped threads, so there is no paired
/// exit: the flag dies with the thread. The cell-granular executor
/// ([`crate::executor`]) shares the runner's flag so nested `Auto`
/// parallelism degrades identically whichever tier spawned the worker.
pub(crate) fn enter_worker() {
    IN_WORKER.with(|w| w.set(true));
}

/// Whether the current thread is a runner/executor worker.
pub(crate) fn in_worker() -> bool {
    IN_WORKER.with(Cell::get)
}

/// Thread-count policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Parallelism {
    /// One worker per available CPU — or sequential when the caller is
    /// itself a `run_trials` worker (every core is already busy running
    /// sibling trials, so fanning out again only oversubscribes).
    Auto,
    /// Exactly this many workers (1 = sequential). Unlike
    /// [`Auto`](Parallelism::Auto), a
    /// nested `Fixed(n)` is honoured: the caller asked for `n` by name.
    Fixed(usize),
}

impl Parallelism {
    pub(crate) fn threads(self) -> usize {
        match self {
            Parallelism::Auto => {
                if in_worker() {
                    1
                } else {
                    std::thread::available_parallelism()
                        .map(|n| n.get())
                        .unwrap_or(1)
                }
            }
            Parallelism::Fixed(n) => n.max(1),
        }
    }
}

/// Runs `trials` independent executions of `f` and returns the results in
/// trial order. `f` receives the trial index and a private RNG.
///
/// Work is distributed dynamically (an atomic cursor), so heterogeneous
/// trial durations — long jammed runs next to short clean ones — balance
/// across workers. Each worker accumulates `(index, value)` pairs locally
/// and the pairs are merged once at the end: no shared results lock, and
/// the output is a pure function of `(trials, master_seed, f)`.
pub fn run_trials<T, F>(trials: u64, master_seed: u64, parallelism: Parallelism, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64, &mut RcbRng) -> T + Sync,
{
    run_trials_isolated(trials, master_seed, parallelism, f)
        .into_iter()
        .map(|r| match r {
            Ok(v) => v,
            Err(failure) => panic!("{failure}"),
        })
        .collect()
}

/// [`run_trials`] with per-trial panic isolation: a trial whose closure
/// panics yields an `Err(`[`TrialFailure`]`)` carrying the trial index and
/// the stringified panic payload, while every other trial completes
/// normally (and bit-identically to a clean run — each trial's RNG stream
/// is independent, so a poisoned trial cannot perturb its neighbours).
///
/// One poisoned parameter cell in a long sweep then costs one row, not the
/// whole run. Use [`run_trials`] when a panic should abort the sweep.
pub fn run_trials_isolated<T, F>(
    trials: u64,
    master_seed: u64,
    parallelism: Parallelism,
    f: F,
) -> Vec<Result<T, TrialFailure>>
where
    T: Send,
    F: Fn(u64, &mut RcbRng) -> T + Sync,
{
    let threads = parallelism.threads().min(trials.max(1) as usize);
    let seeds = SeedSequence::new(master_seed);
    let run_one = |i: u64| -> Result<T, TrialFailure> {
        let mut rng = seeds.rng(i);
        catch_unwind(AssertUnwindSafe(|| f(i, &mut rng)))
            .map_err(|payload| TrialFailure::new(i, panic_payload(payload)))
    };

    if threads <= 1 {
        return (0..trials).map(run_one).collect();
    }

    let cursor = AtomicU64::new(0);
    let worker = |collected: &mut Vec<(u64, Result<T, TrialFailure>)>| {
        enter_worker();
        loop {
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            if i >= trials {
                return;
            }
            collected.push((i, run_one(i)));
        }
    };

    let mut per_worker: Vec<Vec<(u64, Result<T, TrialFailure>)>> = Vec::with_capacity(threads);
    per_worker.resize_with(threads, Vec::new);
    std::thread::scope(|scope| {
        for collected in &mut per_worker {
            scope.spawn(|| worker(collected));
        }
    });

    let mut slots: Vec<Option<Result<T, TrialFailure>>> = Vec::with_capacity(trials as usize);
    slots.resize_with(trials as usize, || None);
    for (i, value) in per_worker.into_iter().flatten() {
        debug_assert!(slots[i as usize].is_none(), "trial {i} claimed twice");
        slots[i as usize] = Some(value);
    }
    slots
        .into_iter()
        .map(|v| v.expect("every trial index was claimed exactly once"))
        .collect()
}

/// Renders a panic payload the way the default hook does: `&str` and
/// `String` payloads verbatim. Non-string payloads are probed against the
/// types a simulation harness plausibly throws — [`SimError`], I/O
/// errors, numbers — and rendered as `TypeName: value` so the failure
/// report names *what* was thrown instead of collapsing every typed
/// payload to the same opaque line.
pub(crate) fn panic_payload(payload: Box<dyn std::any::Any + Send>) -> String {
    let payload = match payload.downcast::<String>() {
        Ok(s) => return *s,
        Err(p) => p,
    };
    let payload = match payload.downcast::<&'static str>() {
        Ok(s) => return (*s).to_string(),
        Err(p) => p,
    };
    macro_rules! probe {
        ($p:expr, $($ty:ty),+ $(,)?) => {{
            let p = $p;
            $(let p = match p.downcast::<$ty>() {
                Ok(v) => return format!("{}: {}", stringify!($ty), *v),
                Err(p) => p,
            };)+
            p
        }};
    }
    use crate::error::SimError;
    use std::io::Error as IoError;
    let _ = probe!(
        payload,
        SimError,
        TrialFailure,
        IoError,
        i32,
        u32,
        i64,
        u64,
        usize,
        f64,
        bool,
        char,
    );
    "non-string panic payload".to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_arrive_in_trial_order() {
        let out = run_trials(100, 7, Parallelism::Fixed(4), |i, _rng| i * 2);
        assert_eq!(out.len(), 100);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as u64 * 2);
        }
    }

    #[test]
    fn parallel_equals_sequential_for_fixed_seed() {
        let seq = run_trials(64, 99, Parallelism::Fixed(1), |i, rng| {
            (i, rng.f64(), rng.below(1000))
        });
        let par = run_trials(64, 99, Parallelism::Fixed(8), |i, rng| {
            (i, rng.f64(), rng.below(1000))
        });
        assert_eq!(seq, par, "determinism must not depend on thread count");
    }

    #[test]
    fn auto_equals_fixed_for_fixed_seed() {
        let auto = run_trials(48, 2014, Parallelism::Auto, |i, rng| {
            (i, rng.below(1 << 20))
        });
        let one = run_trials(48, 2014, Parallelism::Fixed(1), |i, rng| {
            (i, rng.below(1 << 20))
        });
        let eight = run_trials(48, 2014, Parallelism::Fixed(8), |i, rng| {
            (i, rng.below(1 << 20))
        });
        assert_eq!(auto, one);
        assert_eq!(auto, eight);
    }

    #[test]
    fn different_trials_get_different_streams() {
        let out = run_trials(50, 1, Parallelism::Fixed(2), |_, rng| rng.below(u64::MAX));
        let mut dedup = out.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), out.len());
    }

    #[test]
    fn zero_trials_is_empty() {
        let out = run_trials(0, 1, Parallelism::Auto, |i, _| i);
        assert!(out.is_empty());
    }

    #[test]
    fn auto_parallelism_runs() {
        let out = run_trials(10, 3, Parallelism::Auto, |i, _| i + 1);
        assert_eq!(out.iter().sum::<u64>(), 55);
    }

    #[test]
    fn nested_auto_degrades_to_sequential() {
        // A trial closure that itself calls run_trials with Auto must not
        // fan out again: the nested run stays on the worker's own thread.
        let all_inner_on_worker = run_trials(4, 1, Parallelism::Fixed(2), |_, _| {
            let outer_thread = std::thread::current().id();
            let inner_threads =
                run_trials(8, 2, Parallelism::Auto, |_, _| std::thread::current().id());
            inner_threads.into_iter().all(|id| id == outer_thread)
        });
        assert!(all_inner_on_worker.into_iter().all(|b| b));
    }

    #[test]
    fn nested_auto_results_match_top_level() {
        // Degrading to sequential must not change results (each trial's
        // RNG stream is index-derived, so it cannot) — pin it anyway.
        let nested = run_trials(3, 7, Parallelism::Fixed(2), |_, _| {
            run_trials(16, 11, Parallelism::Auto, |i, rng| (i, rng.f64()))
        });
        let top = run_trials(16, 11, Parallelism::Auto, |i, rng| (i, rng.f64()));
        for inner in nested {
            assert_eq!(inner, top);
        }
    }

    #[test]
    fn panicking_trial_is_isolated() {
        // Trial 5 panics; the other trials must complete with values
        // bit-identical to a run where nothing panicked.
        let clean = run_trials(16, 42, Parallelism::Fixed(4), |i, rng| (i, rng.f64()));
        let isolated = run_trials_isolated(16, 42, Parallelism::Fixed(4), |i, rng| {
            if i == 5 {
                panic!("injected failure in trial {i}");
            }
            (i, rng.f64())
        });
        assert_eq!(isolated.len(), 16);
        for (i, r) in isolated.iter().enumerate() {
            if i == 5 {
                let failure = r.as_ref().expect_err("trial 5 panicked");
                assert_eq!(failure.trial, 5);
                assert!(failure.payload.contains("injected failure"));
            } else {
                assert_eq!(r.as_ref().unwrap(), &clean[i], "trial {i} perturbed");
            }
        }
    }

    #[test]
    fn run_trials_propagates_trial_panics() {
        let caught = std::panic::catch_unwind(|| {
            run_trials(4, 1, Parallelism::Fixed(1), |i, _rng| {
                if i == 2 {
                    panic!("boom");
                }
                i
            })
        });
        let payload = caught.expect_err("the panic must propagate");
        let msg = super::panic_payload(payload);
        assert!(msg.contains("trial 2"), "got: {msg}");
        assert!(msg.contains("boom"), "got: {msg}");
    }

    #[test]
    fn typed_panic_payloads_keep_their_type_names() {
        use crate::error::SimError;
        let results = run_trials_isolated(4, 9, Parallelism::Fixed(1), |i, _| match i {
            0 => std::panic::panic_any(SimError::SlotBudgetExhausted {
                max_slots: 8,
                slots: 8,
            }),
            1 => std::panic::panic_any(42u64),
            2 => std::panic::panic_any(vec![1u8]), // unprobed type stays opaque
            _ => (),
        });
        let sim = &results[0].as_ref().expect_err("trial 0 panicked").payload;
        assert!(
            sim.starts_with("SimError: slot budget exhausted"),
            "got: {sim}"
        );
        let num = &results[1].as_ref().expect_err("trial 1 panicked").payload;
        assert_eq!(num, "u64: 42");
        let opaque = &results[2].as_ref().expect_err("trial 2 panicked").payload;
        assert_eq!(opaque, "non-string panic payload");
        assert!(results[3].is_ok());
    }

    #[test]
    fn uneven_workloads_still_order_results() {
        // Long trials next to instant ones: dynamic distribution must not
        // perturb output order.
        let out = run_trials(32, 5, Parallelism::Fixed(4), |i, _| {
            if i % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            i
        });
        assert_eq!(out, (0..32).collect::<Vec<_>>());
    }
}
