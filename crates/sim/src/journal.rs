//! Append-only, checksummed run journals: crash-safe checkpoints that make
//! long sweeps resumable.
//!
//! A journal is a JSONL file. Line 1 is the **header** — the consumer kind
//! (`"perf"`, `"scenario"`, `"sweep"`), the [`ScenarioSpec`
//! fingerprint](crate::scenario::ScenarioSpec::fingerprint) (or a
//! grid-level fold of several), and free-form metadata. Every subsequent
//! line is one **record**: a cell key, an arbitrary JSON payload, and an
//! FNV-1a checksum of the payload's canonical compact rendering:
//!
//! ```text
//! {"rcb_journal":1,"kind":"perf","fingerprint":"9f86d081884c7d65","meta":{...}}
//! {"cell":"pass1/duel_clean","payload":{...},"fnv":"b94d27b9934d3e08"}
//! ```
//!
//! Durability model: consumers hold results in memory and call
//! [`Journal::flush`], which rewrites the whole file through a temp file
//! and an atomic rename — a reader (or a resumed run) sees either the old
//! complete journal or the new one, never a blend. The torn-write window
//! that remains (the process dying mid-`write` before the rename) is
//! exactly why [`Journal::load`] tolerates one unparseable or
//! checksum-failing **final** line: it is dropped and re-run, not fatal.
//! Corruption anywhere earlier is a hard [`JournalError::Corrupt`] —
//! silent data loss in the middle of a journal must never look like a
//! short run.
//!
//! Resume contract: [`Journal::open_resume`] refuses (typed) a journal
//! whose kind or fingerprint does not match the run being resumed.
//! Completed cells are skipped by the caller; everything else re-runs from
//! the same seed fold, so a resumed run is bit-identical to an
//! uninterrupted one. Deadline-cut results (wall-clock dependent) are
//! never appended.

use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};

use crate::json::Json;
use crate::scenario::{fnv1a_bytes, FNV_OFFSET};

/// On-disk format version (the `rcb_journal` header field).
pub const JOURNAL_VERSION: u64 = 1;

/// Identity line of a journal: which consumer wrote it, for which work.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalHeader {
    /// Consumer tag: `"perf"`, `"scenario"`, `"sweep"`, …
    pub kind: String,
    /// The spec (or grid) fingerprint the records belong to.
    pub fingerprint: u64,
    /// Free-form consumer metadata (seed, scale, cpus list, …).
    pub meta: Json,
}

impl JournalHeader {
    pub fn new(kind: &str, fingerprint: u64, meta: Json) -> JournalHeader {
        JournalHeader {
            kind: kind.to_string(),
            fingerprint,
            meta,
        }
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("rcb_journal", Json::Num(JOURNAL_VERSION as f64)),
            ("kind", Json::Str(self.kind.clone())),
            (
                "fingerprint",
                Json::Str(format!("{:016x}", self.fingerprint)),
            ),
            ("meta", self.meta.clone()),
        ])
    }

    fn from_json(value: &Json) -> Result<JournalHeader, String> {
        match value.get("rcb_journal").and_then(Json::as_u64) {
            Some(JOURNAL_VERSION) => {}
            Some(v) => return Err(format!("unsupported journal version {v}")),
            None => return Err("not an rcb journal (missing `rcb_journal`)".into()),
        }
        let kind = value
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("journal header missing `kind`")?
            .to_string();
        let fingerprint = value
            .get("fingerprint")
            .and_then(Json::as_str)
            .ok_or("journal header missing `fingerprint`")?;
        let fingerprint = u64::from_str_radix(fingerprint, 16)
            .map_err(|e| format!("bad journal fingerprint: {e}"))?;
        let meta = value.get("meta").cloned().unwrap_or(Json::Null);
        Ok(JournalHeader {
            kind,
            fingerprint,
            meta,
        })
    }
}

/// Typed journal failures. `Io` and `Corrupt` mean the file is unusable;
/// the two mismatch variants are *refusals* — the journal is intact but
/// belongs to different work, and resuming from it would silently splice
/// results from another run.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalError {
    Io(String),
    /// A malformed or checksum-failing line anywhere except the final one.
    Corrupt {
        line: usize,
        reason: String,
    },
    /// The journal's fingerprint does not match the run being resumed.
    FingerprintMismatch {
        expected: u64,
        found: u64,
    },
    /// The journal was written by a different consumer kind.
    KindMismatch {
        expected: String,
        found: String,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal io error: {e}"),
            JournalError::Corrupt { line, reason } => {
                write!(f, "journal corrupt at line {line}: {reason}")
            }
            JournalError::FingerprintMismatch { expected, found } => write!(
                f,
                "journal fingerprint mismatch: this run is {expected:016x}, \
                 the journal records {found:016x} — refusing to splice results \
                 from different work"
            ),
            JournalError::KindMismatch { expected, found } => write!(
                f,
                "journal kind mismatch: expected a `{expected}` journal, found `{found}`"
            ),
        }
    }
}

impl std::error::Error for JournalError {}

/// An in-memory journal bound to a file path. Records accumulate via
/// [`append`](Journal::append); [`flush`](Journal::flush) persists
/// atomically.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    header: JournalHeader,
    records: Vec<(String, Json)>,
    index: HashMap<String, usize>,
    dropped_tail: bool,
}

impl Journal {
    /// A fresh, empty journal. Nothing touches the filesystem until
    /// [`flush`](Journal::flush).
    pub fn create(path: impl Into<PathBuf>, header: JournalHeader) -> Journal {
        Journal {
            path: path.into(),
            header,
            records: Vec::new(),
            index: HashMap::new(),
            dropped_tail: false,
        }
    }

    /// Loads a journal from disk. A torn **final** record line (the
    /// crash-window artifact) is detected — parse failure or checksum
    /// mismatch — and dropped, reported via
    /// [`dropped_tail`](Journal::dropped_tail); the same damage on any
    /// earlier line is [`JournalError::Corrupt`].
    pub fn load(path: impl Into<PathBuf>) -> Result<Journal, JournalError> {
        let path = path.into();
        let text = std::fs::read_to_string(&path)
            .map_err(|e| JournalError::Io(format!("{}: {e}", path.display())))?;
        // A record line ending without a newline is already suspect: the
        // writer terminates every line. Track that for tail tolerance.
        let mut lines: Vec<&str> = text.split('\n').collect();
        if lines.last() == Some(&"") {
            lines.pop();
        }
        let mut lines = lines.into_iter().enumerate();
        let (_, header_line) = lines.next().ok_or(JournalError::Corrupt {
            line: 1,
            reason: "empty file".into(),
        })?;
        let header = Json::parse(header_line)
            .and_then(|v| JournalHeader::from_json(&v))
            .map_err(|reason| JournalError::Corrupt { line: 1, reason })?;

        let mut journal = Journal {
            path,
            header,
            records: Vec::new(),
            index: HashMap::new(),
            dropped_tail: false,
        };
        let mut pending: Option<(usize, String)> = None;
        for (i, line) in lines {
            if let Some((line_no, reason)) = pending.take() {
                // The damaged line was not the final one after all.
                return Err(JournalError::Corrupt {
                    line: line_no + 1,
                    reason,
                });
            }
            match parse_record(line) {
                Ok((cell, payload)) => journal.insert(cell, payload),
                Err(reason) => pending = Some((i, reason)),
            }
        }
        if pending.is_some() {
            journal.dropped_tail = true;
        }
        Ok(journal)
    }

    /// [`load`](Journal::load), then refuse (typed) a journal whose kind
    /// or fingerprint does not match the run being resumed.
    pub fn open_resume(
        path: impl Into<PathBuf>,
        kind: &str,
        fingerprint: u64,
    ) -> Result<Journal, JournalError> {
        let journal = Journal::load(path)?;
        if journal.header.kind != kind {
            return Err(JournalError::KindMismatch {
                expected: kind.to_string(),
                found: journal.header.kind,
            });
        }
        if journal.header.fingerprint != fingerprint {
            return Err(JournalError::FingerprintMismatch {
                expected: fingerprint,
                found: journal.header.fingerprint,
            });
        }
        Ok(journal)
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    pub fn header(&self) -> &JournalHeader {
        &self.header
    }

    /// Was a torn final line discarded at load time?
    pub fn dropped_tail(&self) -> bool {
        self.dropped_tail
    }

    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    pub fn contains(&self, cell: &str) -> bool {
        self.index.contains_key(cell)
    }

    pub fn get(&self, cell: &str) -> Option<&Json> {
        self.index.get(cell).map(|&i| &self.records[i].1)
    }

    /// Cell keys in append order.
    pub fn cells(&self) -> impl Iterator<Item = &str> {
        self.records.iter().map(|(cell, _)| cell.as_str())
    }

    /// Records a cell result. Re-appending an existing cell replaces its
    /// payload in place (resume paths re-derive identical payloads, so
    /// this is idempotence, not mutation).
    pub fn append(&mut self, cell: impl Into<String>, payload: Json) {
        self.insert(cell.into(), payload);
    }

    fn insert(&mut self, cell: String, payload: Json) {
        match self.index.get(&cell) {
            Some(&i) => self.records[i].1 = payload,
            None => {
                self.index.insert(cell.clone(), self.records.len());
                self.records.push((cell, payload));
            }
        }
    }

    /// Persists atomically: the full JSONL content is written to
    /// `<path>.tmp` and renamed over `<path>`, so readers see either the
    /// previous complete journal or this one.
    pub fn flush(&self) -> Result<(), JournalError> {
        let mut out = String::new();
        out.push_str(&self.header.to_json().render_compact());
        out.push('\n');
        for (cell, payload) in &self.records {
            out.push_str(&render_record(cell, payload));
            out.push('\n');
        }
        let tmp = self.path.with_extension("jsonl.tmp");
        let io = |e: std::io::Error| JournalError::Io(format!("{}: {e}", self.path.display()));
        std::fs::write(&tmp, out.as_bytes()).map_err(io)?;
        std::fs::rename(&tmp, &self.path).map_err(io)
    }
}

fn render_record(cell: &str, payload: &Json) -> String {
    let body = payload.render_compact();
    let fnv = fnv1a_bytes(FNV_OFFSET, body.as_bytes());
    Json::obj(vec![
        ("cell", Json::Str(cell.to_string())),
        ("payload", payload.clone()),
        ("fnv", Json::Str(format!("{fnv:016x}"))),
    ])
    .render_compact()
}

fn parse_record(line: &str) -> Result<(String, Json), String> {
    let value = Json::parse(line)?;
    let cell = value
        .get("cell")
        .and_then(Json::as_str)
        .ok_or("record missing `cell`")?
        .to_string();
    let payload = value.get("payload").ok_or("record missing `payload`")?;
    let recorded = value
        .get("fnv")
        .and_then(Json::as_str)
        .ok_or("record missing `fnv`")?;
    let recorded = u64::from_str_radix(recorded, 16).map_err(|e| format!("bad record fnv: {e}"))?;
    let actual = fnv1a_bytes(FNV_OFFSET, payload.render_compact().as_bytes());
    if actual != recorded {
        return Err(format!(
            "record checksum mismatch: recorded {recorded:016x}, computed {actual:016x}"
        ));
    }
    Ok((cell, payload.clone()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "rcb_journal_test_{}_{name}.jsonl",
            std::process::id()
        ));
        p
    }

    fn sample_header() -> JournalHeader {
        JournalHeader::new(
            "perf",
            0x9f86_d081_884c_7d65,
            Json::obj(vec![("seed", Json::Str("2014".into()))]),
        )
    }

    #[test]
    fn create_append_flush_load_round_trips() {
        let path = tmp_path("round_trip");
        let mut j = Journal::create(&path, sample_header());
        j.append(
            "pass1/duel_clean",
            Json::obj(vec![("checksum", Json::Str("00ff".into()))]),
        );
        j.append(
            "pass1/duel_jammed",
            Json::obj(vec![("checksum", Json::Str("abcd".into()))]),
        );
        j.flush().expect("flush");

        let back = Journal::load(&path).expect("load");
        assert_eq!(back.header(), &sample_header());
        assert_eq!(back.len(), 2);
        assert!(back.contains("pass1/duel_clean"));
        assert!(!back.dropped_tail());
        assert_eq!(
            back.get("pass1/duel_jammed")
                .and_then(|p| p.get("checksum"))
                .and_then(Json::as_str),
            Some("abcd")
        );
        assert_eq!(
            back.cells().collect::<Vec<_>>(),
            vec!["pass1/duel_clean", "pass1/duel_jammed"],
            "append order survives"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reappending_a_cell_replaces_in_place() {
        let mut j = Journal::create(tmp_path("reappend"), sample_header());
        j.append("c", Json::Num(1.0));
        j.append("c", Json::Num(2.0));
        assert_eq!(j.len(), 1);
        assert_eq!(j.get("c"), Some(&Json::Num(2.0)));
    }

    #[test]
    fn torn_final_line_is_dropped_not_fatal() {
        let path = tmp_path("torn_tail");
        let mut j = Journal::create(&path, sample_header());
        j.append("a", Json::Num(1.0));
        j.append("b", Json::Num(2.0));
        j.flush().expect("flush");

        // Simulate a crash mid-write: truncate the final line.
        let text = std::fs::read_to_string(&path).expect("read");
        let cut = text.trim_end().len() - 10;
        std::fs::write(&path, &text[..cut]).expect("write");

        let back = Journal::load(&path).expect("torn tail must not be fatal");
        assert!(back.dropped_tail());
        assert_eq!(back.len(), 1);
        assert!(back.contains("a"));
        assert!(!back.contains("b"), "the torn record is gone");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn checksum_damage_on_the_final_line_is_also_dropped() {
        let path = tmp_path("flipped_tail");
        let mut j = Journal::create(&path, sample_header());
        j.append("a", Json::Num(1.0));
        j.append("b", Json::Num(2.0));
        j.flush().expect("flush");

        // Flip the payload of the final line without touching its fnv:
        // still valid JSON, but the checksum no longer matches.
        let text = std::fs::read_to_string(&path).expect("read");
        let damaged = text.replace(r#""payload":2,"#, r#""payload":3,"#);
        assert_ne!(text, damaged, "the substitution must hit");
        std::fs::write(&path, damaged).expect("write");

        let back = Journal::load(&path).expect("damaged tail must not be fatal");
        assert!(back.dropped_tail());
        assert!(!back.contains("b"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mid_file_corruption_is_fatal() {
        let path = tmp_path("mid_corruption");
        let mut j = Journal::create(&path, sample_header());
        j.append("a", Json::Num(1.0));
        j.append("b", Json::Num(2.0));
        j.flush().expect("flush");

        let text = std::fs::read_to_string(&path).expect("read");
        let damaged = text.replace(r#""payload":1,"#, r#""payload":9,"#);
        assert_ne!(text, damaged);
        std::fs::write(&path, damaged).expect("write");

        let err = Journal::load(&path).expect_err("mid-file damage must be fatal");
        assert!(
            matches!(err, JournalError::Corrupt { line: 2, .. }),
            "{err:?}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_refuses_fingerprint_and_kind_mismatches() {
        let path = tmp_path("mismatch");
        let j = Journal::create(&path, sample_header());
        j.flush().expect("flush");

        let fp = sample_header().fingerprint;
        assert!(Journal::open_resume(&path, "perf", fp).is_ok());
        let err = Journal::open_resume(&path, "perf", fp ^ 1).expect_err("wrong fingerprint");
        assert!(matches!(err, JournalError::FingerprintMismatch { .. }));
        assert!(err.to_string().contains("refusing"));
        let err = Journal::open_resume(&path, "scenario", fp).expect_err("wrong kind");
        assert!(matches!(err, JournalError::KindMismatch { .. }));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_a_typed_io_error() {
        let err = Journal::load("/nonexistent/rcb/journal.jsonl").expect_err("missing file");
        assert!(matches!(err, JournalError::Io(_)));
    }

    #[test]
    fn flush_is_idempotent_and_atomic_over_rewrites() {
        let path = tmp_path("rewrite");
        let mut j = Journal::create(&path, sample_header());
        j.append("a", Json::Num(1.0));
        j.flush().expect("first flush");
        j.append("b", Json::Num(2.0));
        j.flush().expect("second flush");

        let back = Journal::load(&path).expect("load");
        assert_eq!(back.len(), 2);
        assert!(
            !path.with_extension("jsonl.tmp").exists(),
            "the temp file is consumed by the rename"
        );
        std::fs::remove_file(&path).ok();
    }
}
