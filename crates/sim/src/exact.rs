//! The reference engine: every slot resolved through the channel substrate.
//!
//! General over any node set implementing
//! [`SlotProtocol`](rcb_core::protocol::SlotProtocol) and any
//! [`SlotAdversary`]. Used directly for small configurations, for the
//! spoofing experiments (only this engine supports payload injection), and
//! as the ground truth the fast engines are cross-validated against.

use rcb_adversary::traits::{SlotAdversary, SlotContext, SlotObservation};
use rcb_channel::ledger::EnergyLedger;
use rcb_channel::partition::Partition;
use rcb_channel::slot::{resolve_slot_into, Action, Reception, SlotResolution};
use rcb_channel::trace::Trace;
use rcb_core::protocol::{Schedule, SlotProtocol};
use rcb_mathkit::rng::RcbRng;
use serde::{Deserialize, Serialize};

/// Engine limits.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ExactConfig {
    /// Hard slot cap; a run that reaches it is reported as truncated.
    pub max_slots: u64,
}

impl Default for ExactConfig {
    fn default() -> Self {
        Self {
            max_slots: 100_000_000,
        }
    }
}

/// Result of an exact-engine run.
#[derive(Debug, Clone)]
pub struct ExactOutcome {
    /// Full energy ledger of the execution.
    pub ledger: EnergyLedger,
    /// Slots executed.
    pub slots: u64,
    /// All nodes halted before the cap.
    pub completed: bool,
}

/// Runs `protocols` against `adversary` until every node is done (or the
/// slot cap is hit). `schedule` supplies the public period structure handed
/// to the adversary; `trace`, when provided, records per-slot summaries.
pub fn run_exact(
    protocols: &mut [&mut dyn SlotProtocol],
    adversary: &mut dyn SlotAdversary,
    schedule: &dyn Schedule,
    partition: &Partition,
    rng: &mut RcbRng,
    config: ExactConfig,
    mut trace: Option<&mut Trace>,
) -> ExactOutcome {
    assert_eq!(
        protocols.len(),
        partition.nodes(),
        "one protocol per partition slot"
    );
    let mut ledger = EnergyLedger::new(protocols.len());
    let mut actions: Vec<Action> = Vec::with_capacity(protocols.len());
    let mut receptions: Vec<Option<Reception>> = vec![None; protocols.len()];
    let mut resolution = SlotResolution {
        states: Vec::new(),
        receptions: Vec::new(),
        senders: 0,
    };

    let mut slot = 0u64;
    while slot < config.max_slots {
        if protocols.iter().all(|p| p.is_done()) {
            return ExactOutcome {
                ledger,
                slots: slot,
                completed: true,
            };
        }
        let loc = schedule.locate(slot);
        let ctx = SlotContext {
            slot,
            period: loc.period,
            offset: loc.offset,
            period_len: loc.len,
            groups: partition.groups(),
        };
        // Adversary commits before node coins are flipped (§1.2).
        let jam = adversary.decide(&ctx);

        actions.clear();
        for p in protocols.iter_mut() {
            actions.push(p.act(rng));
        }

        resolve_slot_into(&actions, &jam, partition, &mut ledger, &mut resolution);
        if let Some(t) = trace.as_deref_mut() {
            t.record(slot, jam.jam_mask, &resolution);
        }

        for r in receptions.iter_mut() {
            *r = None;
        }
        for (node, reception) in &resolution.receptions {
            receptions[*node] = Some(reception.clone());
        }
        for (i, p) in protocols.iter_mut().enumerate() {
            p.end_slot(receptions[i].as_ref());
        }

        adversary.observe(&SlotObservation {
            ctx,
            actions: &actions,
            resolution: &resolution,
        });
        slot += 1;
    }
    let completed = protocols.iter().all(|p| p.is_done());
    ExactOutcome {
        ledger,
        slots: slot,
        completed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcb_adversary::slot_strategies::{BudgetedPhaseBlocker, NoJam};
    use rcb_core::one_to_one::profile::Fig1Profile;
    use rcb_core::one_to_one::schedule::DuelSchedule;
    use rcb_core::one_to_one::slot::{AliceProtocol, BobProtocol};

    fn fig1_pair(
        start_epoch: u32,
    ) -> (
        AliceProtocol<Fig1Profile>,
        BobProtocol<Fig1Profile>,
        DuelSchedule,
    ) {
        let profile = Fig1Profile::with_start_epoch(0.1, start_epoch);
        (
            AliceProtocol::new(profile),
            BobProtocol::new(profile),
            DuelSchedule::new(start_epoch),
        )
    }

    #[test]
    fn unjammed_duel_delivers_and_halts_fast() {
        let mut delivered = 0;
        let trials = 50;
        for seed in 0..trials {
            let (mut alice, mut bob, schedule) = fig1_pair(6);
            let mut rng = RcbRng::new(seed);
            let mut adv = NoJam;
            let partition = Partition::pair();
            let out = run_exact(
                &mut [&mut alice, &mut bob],
                &mut adv,
                &schedule,
                &partition,
                &mut rng,
                ExactConfig::default(),
                None,
            );
            assert!(out.completed, "unjammed duel must halt");
            assert_eq!(out.ledger.adversary_cost(), 0);
            if bob.received_message() {
                delivered += 1;
            }
            // With no jamming both should halt within very few epochs:
            // epoch 6 + margin.
            assert!(out.slots < 4096, "slots {}", out.slots);
        }
        // ε = 0.1 nominal; small start epoch weakens the constant a bit.
        // Expect the vast majority of runs to deliver.
        assert!(
            delivered >= trials * 8 / 10,
            "delivered {delivered}/{trials}"
        );
    }

    #[test]
    fn jamming_inflates_costs_and_charges_adversary() {
        let (mut alice, mut bob, schedule) = fig1_pair(6);
        let mut rng = RcbRng::new(7);
        // Fully block early phases with a healthy budget.
        let mut adv = BudgetedPhaseBlocker::new(2_000, 1.0);
        let partition = Partition::pair();
        let out = run_exact(
            &mut [&mut alice, &mut bob],
            &mut adv,
            &schedule,
            &partition,
            &mut rng,
            ExactConfig::default(),
            None,
        );
        assert!(out.completed);
        assert!(out.ledger.adversary_cost() > 0);
        // Heavy early jamming must push the pair past the first epoch.
        assert!(out.slots > 128, "slots {}", out.slots);
    }

    #[test]
    fn trace_records_slots() {
        let (mut alice, mut bob, schedule) = fig1_pair(5);
        let mut rng = RcbRng::new(8);
        let mut adv = NoJam;
        let partition = Partition::pair();
        let mut trace = Trace::with_capacity(64);
        let out = run_exact(
            &mut [&mut alice, &mut bob],
            &mut adv,
            &schedule,
            &partition,
            &mut rng,
            ExactConfig::default(),
            Some(&mut trace),
        );
        assert!(out.completed);
        assert!(!trace.is_empty());
    }

    #[test]
    fn slot_cap_truncates() {
        let (mut alice, mut bob, schedule) = fig1_pair(8);
        let mut rng = RcbRng::new(9);
        let mut adv = NoJam;
        let partition = Partition::pair();
        let out = run_exact(
            &mut [&mut alice, &mut bob],
            &mut adv,
            &schedule,
            &partition,
            &mut rng,
            ExactConfig { max_slots: 10 },
            None,
        );
        assert_eq!(out.slots, 10);
        assert!(!out.completed);
    }

    #[test]
    #[should_panic]
    fn partition_size_mismatch_panics() {
        let (mut alice, _, schedule) = fig1_pair(5);
        let mut rng = RcbRng::new(10);
        let mut adv = NoJam;
        let partition = Partition::pair(); // 2 slots, 1 protocol
        run_exact(
            &mut [&mut alice],
            &mut adv,
            &schedule,
            &partition,
            &mut rng,
            ExactConfig::default(),
            None,
        );
    }
}
