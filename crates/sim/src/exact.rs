//! The reference engine: every slot resolved through the channel substrate.
//!
//! General over any node set implementing
//! [`SlotProtocol`] and any
//! [`SlotAdversary`]. Used directly for small configurations, for the
//! spoofing experiments (only this engine supports payload injection), and
//! as the ground truth the fast engines are cross-validated against.

use rcb_adversary::traits::{SlotAdversary, SlotContext, SlotObservation};
use rcb_channel::ledger::EnergyLedger;
use rcb_channel::partition::Partition;
use rcb_channel::slot::{resolve_slot_into, Action, Reception, SlotResolution};
use rcb_channel::trace::Trace;
use rcb_core::protocol::{Schedule, SlotProtocol};
use rcb_mathkit::rng::RcbRng;
use serde::{Deserialize, Serialize};

use crate::deadline::Deadline;
use crate::error::SimError;
use crate::faults::FaultPlan;

/// Engine limits.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ExactConfig {
    /// Hard slot cap; a run that reaches it is reported as truncated.
    pub max_slots: u64,
}

impl Default for ExactConfig {
    fn default() -> Self {
        Self {
            max_slots: 100_000_000,
        }
    }
}

/// Result of an exact-engine run.
#[derive(Debug, Clone)]
pub struct ExactOutcome {
    /// Full energy ledger of the execution.
    pub ledger: EnergyLedger,
    /// Slots executed.
    pub slots: u64,
    /// All nodes halted before the cap.
    pub completed: bool,
}

/// Runs `protocols` against `adversary` until every node is done (or the
/// slot cap is hit). `schedule` supplies the public period structure handed
/// to the adversary; `trace`, when provided, records per-slot summaries.
pub fn run_exact(
    protocols: &mut [&mut dyn SlotProtocol],
    adversary: &mut dyn SlotAdversary,
    schedule: &dyn Schedule,
    partition: &Partition,
    rng: &mut RcbRng,
    config: ExactConfig,
    trace: Option<&mut Trace>,
) -> ExactOutcome {
    run_exact_core(
        protocols,
        adversary,
        schedule,
        partition,
        rng,
        config,
        trace,
        &FaultPlan::none(),
        &Deadline::NONE,
    )
    .0
}

/// [`run_exact`] with a fault-injection plan (see [`crate::faults`])
/// layered between the channel and the receivers.
///
/// Battery-dead and crashed nodes are forced to [`Action::Sleep`];
/// battery-dead nodes additionally count as halted for the completion
/// check (they can never act again). The trace and the adversary's
/// observations record the **raw** channel resolution — receiver-side
/// degradation is invisible on the air.
#[allow(clippy::too_many_arguments)]
pub fn run_exact_faulted(
    protocols: &mut [&mut dyn SlotProtocol],
    adversary: &mut dyn SlotAdversary,
    schedule: &dyn Schedule,
    partition: &Partition,
    rng: &mut RcbRng,
    config: ExactConfig,
    trace: Option<&mut Trace>,
    faults: &FaultPlan,
) -> ExactOutcome {
    run_exact_core(
        protocols,
        adversary,
        schedule,
        partition,
        rng,
        config,
        trace,
        faults,
        &Deadline::NONE,
    )
    .0
}

/// [`run_exact_faulted`] that reports budget exhaustion as a typed
/// [`SimError`] instead of a silent `completed = false`.
#[allow(clippy::too_many_arguments)]
pub fn run_exact_checked(
    protocols: &mut [&mut dyn SlotProtocol],
    adversary: &mut dyn SlotAdversary,
    schedule: &dyn Schedule,
    partition: &Partition,
    rng: &mut RcbRng,
    config: ExactConfig,
    trace: Option<&mut Trace>,
    faults: &FaultPlan,
) -> Result<ExactOutcome, SimError> {
    match run_exact_core(
        protocols,
        adversary,
        schedule,
        partition,
        rng,
        config,
        trace,
        faults,
        &Deadline::NONE,
    ) {
        (outcome, None) => Ok(outcome),
        (_, Some(err)) => Err(err),
    }
}

/// Slots between deadline checkpoints in the exact engine's hot loop: the
/// per-slot work is small, so reading the clock every slot would dominate.
const DEADLINE_CHECK_MASK: u64 = 0xFFF;

/// Retained per-session state of the exact engine: the energy ledger and
/// every per-slot buffer. Sessions hold one across runs; the legacy entry
/// points build a fresh one per run, so both paths execute the identical
/// slot loop. The outcome clones the ledger (node counts, not slots — the
/// only per-run copy the session layer introduces).
#[derive(Debug)]
pub struct ExactScratch {
    ledger: EnergyLedger,
    actions: Vec<Action>,
    receptions: Vec<Option<Reception>>,
    resolution: SlotResolution,
    dead: Vec<bool>,
}

impl ExactScratch {
    pub fn new(nodes: usize) -> Self {
        Self {
            ledger: EnergyLedger::new(nodes),
            actions: Vec::with_capacity(nodes),
            receptions: vec![None; nodes],
            resolution: SlotResolution {
                states: Vec::new(),
                receptions: Vec::new(),
                senders: 0,
            },
            dead: vec![false; nodes],
        }
    }

    /// Number of nodes this scratch was sized for.
    pub fn nodes(&self) -> usize {
        self.dead.len()
    }

    /// Zeroes the ledger and fault flags in place (the session layer's
    /// re-arm path); the per-slot buffers are overwritten every slot and
    /// need no reset.
    pub fn rearm(&mut self) {
        self.ledger.reset();
        self.dead.fill(false);
    }
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn run_exact_core(
    protocols: &mut [&mut dyn SlotProtocol],
    adversary: &mut dyn SlotAdversary,
    schedule: &dyn Schedule,
    partition: &Partition,
    rng: &mut RcbRng,
    config: ExactConfig,
    trace: Option<&mut Trace>,
    faults: &FaultPlan,
    deadline: &Deadline,
) -> (ExactOutcome, Option<SimError>) {
    let mut scratch = ExactScratch::new(protocols.len());
    run_exact_in(
        &mut scratch,
        protocols,
        adversary,
        schedule,
        partition,
        rng,
        config,
        trace,
        faults,
        deadline,
    )
}

/// The slot loop over caller-retained [`ExactScratch`] state. The scratch
/// must be armed (fresh, or [`ExactScratch::rearm`]ed since its last run).
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_exact_in(
    scratch: &mut ExactScratch,
    protocols: &mut [&mut dyn SlotProtocol],
    adversary: &mut dyn SlotAdversary,
    schedule: &dyn Schedule,
    partition: &Partition,
    rng: &mut RcbRng,
    config: ExactConfig,
    mut trace: Option<&mut Trace>,
    faults: &FaultPlan,
    deadline: &Deadline,
) -> (ExactOutcome, Option<SimError>) {
    assert_eq!(
        protocols.len(),
        partition.nodes(),
        "one protocol per partition slot"
    );
    assert_eq!(
        protocols.len(),
        scratch.nodes(),
        "scratch sized for a different node count"
    );
    debug_assert!(faults.validate().is_ok(), "invalid fault plan");
    let ExactScratch {
        ledger,
        actions,
        receptions,
        resolution,
        dead,
    } = scratch;
    // Fault state. The dedicated RNG stream is derived only for non-empty
    // plans, so `FaultPlan::none()` leaves the caller's stream — and hence
    // every coin flip below — bit-identical to the unfaulted engine.
    let mut fault_rng = if faults.is_none() {
        None
    } else {
        Some(rng.split())
    };
    let mut pending_reboot = faults.reboot_at();

    // Deadline checkpoints consume no RNG; the `is_unbounded` gate keeps
    // even the cadenced clock read off the default (unbounded) path.
    let bounded = !deadline.is_unbounded();

    let mut slot = 0u64;
    while slot < config.max_slots {
        if bounded && slot & DEADLINE_CHECK_MASK == 0 && deadline.exceeded() {
            let completed = protocols
                .iter()
                .zip(&**dead)
                .all(|(p, &d)| p.is_done() || d);
            return (
                ExactOutcome {
                    ledger: ledger.clone(),
                    slots: slot,
                    completed,
                },
                (!completed).then_some(SimError::DeadlineExceeded { slots: slot }),
            );
        }
        let loc = schedule.locate(slot);
        if loc.offset == 0 {
            // Period-boundary bookkeeping: the battery gauge is sampled
            // here (overshoot ≤ one period, matching the fast engines) and
            // a state-losing reboot fires on the first period after the
            // crash window.
            if let Some(cap) = faults.battery_capacity() {
                for (i, d) in dead.iter_mut().enumerate() {
                    *d = *d || ledger.node_cost(i) >= cap;
                }
            }
            if let Some((node, at)) = pending_reboot {
                if loc.period >= at {
                    protocols[node].reboot();
                    pending_reboot = None;
                }
            }
        }
        if protocols
            .iter()
            .zip(&**dead)
            .all(|(p, &d)| p.is_done() || d)
        {
            return (
                ExactOutcome {
                    ledger: ledger.clone(),
                    slots: slot,
                    completed: true,
                },
                None,
            );
        }
        let ctx = SlotContext {
            slot,
            period: loc.period,
            offset: loc.offset,
            period_len: loc.len,
            groups: partition.groups(),
        };
        // Adversary commits before node coins are flipped (§1.2).
        let jam = adversary.decide(&ctx);

        actions.clear();
        for (i, p) in protocols.iter_mut().enumerate() {
            // Radio off: no acting, no coin flips — the protocol's RNG
            // stream pauses with its radio (and resumes in sync, because
            // the fast engines skip whole-period sampling the same way).
            if dead[i] || faults.crashed(i, loc.period) {
                actions.push(Action::Sleep);
            } else {
                actions.push(p.act(rng));
            }
        }

        resolve_slot_into(actions, &jam, partition, ledger, resolution);
        if let Some(t) = trace.as_deref_mut() {
            t.record(slot, jam.jam_mask, resolution);
        }

        for r in receptions.iter_mut() {
            *r = None;
        }
        for (node, reception) in &resolution.receptions {
            let heard = match &mut fault_rng {
                None => reception.clone(),
                Some(frng) => faults
                    .receiver_condition(*node, loc.offset)
                    .apply(reception.clone(), frng),
            };
            receptions[*node] = Some(heard);
        }
        for (i, p) in protocols.iter_mut().enumerate() {
            p.end_slot(receptions[i].as_ref());
        }

        adversary.observe(&SlotObservation {
            ctx,
            actions,
            resolution,
        });
        slot += 1;
    }
    let completed = protocols
        .iter()
        .zip(&**dead)
        .all(|(p, &d)| p.is_done() || d);
    let err = (!completed).then_some(SimError::SlotBudgetExhausted {
        max_slots: config.max_slots,
        slots: slot,
    });
    (
        ExactOutcome {
            ledger: ledger.clone(),
            slots: slot,
            completed,
        },
        err,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcb_adversary::slot_strategies::{BudgetedPhaseBlocker, NoJam};
    use rcb_core::one_to_one::profile::Fig1Profile;
    use rcb_core::one_to_one::schedule::DuelSchedule;
    use rcb_core::one_to_one::slot::{AliceProtocol, BobProtocol};

    fn fig1_pair(
        start_epoch: u32,
    ) -> (
        AliceProtocol<Fig1Profile>,
        BobProtocol<Fig1Profile>,
        DuelSchedule,
    ) {
        let profile = Fig1Profile::with_start_epoch(0.1, start_epoch);
        (
            AliceProtocol::new(profile),
            BobProtocol::new(profile),
            DuelSchedule::new(start_epoch),
        )
    }

    #[test]
    fn unjammed_duel_delivers_and_halts_fast() {
        let mut delivered = 0;
        let trials = 50;
        for seed in 0..trials {
            let (mut alice, mut bob, schedule) = fig1_pair(6);
            let mut rng = RcbRng::new(seed);
            let mut adv = NoJam;
            let partition = Partition::pair();
            let out = run_exact(
                &mut [&mut alice, &mut bob],
                &mut adv,
                &schedule,
                &partition,
                &mut rng,
                ExactConfig::default(),
                None,
            );
            assert!(out.completed, "unjammed duel must halt");
            assert_eq!(out.ledger.adversary_cost(), 0);
            if bob.received_message() {
                delivered += 1;
            }
            // With no jamming both should halt within very few epochs:
            // epoch 6 + margin.
            assert!(out.slots < 4096, "slots {}", out.slots);
        }
        // ε = 0.1 nominal; small start epoch weakens the constant a bit.
        // Expect the vast majority of runs to deliver.
        assert!(
            delivered >= trials * 8 / 10,
            "delivered {delivered}/{trials}"
        );
    }

    #[test]
    fn jamming_inflates_costs_and_charges_adversary() {
        let (mut alice, mut bob, schedule) = fig1_pair(6);
        let mut rng = RcbRng::new(7);
        // Fully block early phases with a healthy budget.
        let mut adv = BudgetedPhaseBlocker::new(2_000, 1.0);
        let partition = Partition::pair();
        let out = run_exact(
            &mut [&mut alice, &mut bob],
            &mut adv,
            &schedule,
            &partition,
            &mut rng,
            ExactConfig::default(),
            None,
        );
        assert!(out.completed);
        assert!(out.ledger.adversary_cost() > 0);
        // Heavy early jamming must push the pair past the first epoch.
        assert!(out.slots > 128, "slots {}", out.slots);
    }

    #[test]
    fn trace_records_slots() {
        let (mut alice, mut bob, schedule) = fig1_pair(5);
        let mut rng = RcbRng::new(8);
        let mut adv = NoJam;
        let partition = Partition::pair();
        let mut trace = Trace::with_capacity(64);
        let out = run_exact(
            &mut [&mut alice, &mut bob],
            &mut adv,
            &schedule,
            &partition,
            &mut rng,
            ExactConfig::default(),
            Some(&mut trace),
        );
        assert!(out.completed);
        assert!(!trace.is_empty());
    }

    #[test]
    fn slot_cap_truncates() {
        let (mut alice, mut bob, schedule) = fig1_pair(8);
        let mut rng = RcbRng::new(9);
        let mut adv = NoJam;
        let partition = Partition::pair();
        let out = run_exact(
            &mut [&mut alice, &mut bob],
            &mut adv,
            &schedule,
            &partition,
            &mut rng,
            ExactConfig { max_slots: 10 },
            None,
        );
        assert_eq!(out.slots, 10);
        assert!(!out.completed);
    }

    #[test]
    fn checked_run_reports_slot_budget_exhaustion() {
        let (mut alice, mut bob, schedule) = fig1_pair(8);
        let mut rng = RcbRng::new(9);
        let mut adv = NoJam;
        let partition = Partition::pair();
        let err = run_exact_checked(
            &mut [&mut alice, &mut bob],
            &mut adv,
            &schedule,
            &partition,
            &mut rng,
            ExactConfig { max_slots: 10 },
            None,
            &FaultPlan::none(),
        )
        .expect_err("10 slots cannot finish a duel");
        assert_eq!(
            err,
            SimError::SlotBudgetExhausted {
                max_slots: 10,
                slots: 10
            }
        );
    }

    #[test]
    fn an_elapsed_deadline_stops_the_slot_loop_with_a_typed_error() {
        let (mut alice, mut bob, schedule) = fig1_pair(8);
        let mut rng = RcbRng::new(9);
        let mut adv = NoJam;
        let partition = Partition::pair();
        let (out, err) = run_exact_core(
            &mut [&mut alice, &mut bob],
            &mut adv,
            &schedule,
            &partition,
            &mut rng,
            ExactConfig::default(),
            None,
            &FaultPlan::none(),
            &Deadline::after(std::time::Duration::ZERO),
        );
        // The checkpoint at slot 0 fires before any work happens.
        assert_eq!(out.slots, 0);
        assert!(!out.completed);
        assert_eq!(err, Some(SimError::DeadlineExceeded { slots: 0 }));
    }

    #[test]
    fn empty_fault_plan_is_bit_identical() {
        let partition = Partition::pair();
        let run = |faulted: bool| {
            let (mut alice, mut bob, schedule) = fig1_pair(6);
            let mut rng = RcbRng::new(77);
            let mut adv = BudgetedPhaseBlocker::new(500, 1.0);
            let protocols: &mut [&mut dyn SlotProtocol] = &mut [&mut alice, &mut bob];
            if faulted {
                run_exact_faulted(
                    protocols,
                    &mut adv,
                    &schedule,
                    &partition,
                    &mut rng,
                    ExactConfig::default(),
                    None,
                    &FaultPlan::none(),
                )
            } else {
                run_exact(
                    protocols,
                    &mut adv,
                    &schedule,
                    &partition,
                    &mut rng,
                    ExactConfig::default(),
                    None,
                )
            }
        };
        let plain = run(false);
        let faulted = run(true);
        assert_eq!(plain.slots, faulted.slots);
        assert_eq!(plain.completed, faulted.completed);
        for i in 0..2 {
            assert_eq!(plain.ledger.node_cost(i), faulted.ledger.node_cost(i));
        }
        assert_eq!(
            plain.ledger.adversary_cost(),
            faulted.ledger.adversary_cost()
        );
    }

    #[test]
    fn battery_brownout_halts_the_run() {
        // A 1-unit battery dies at the first period boundary after any
        // activity; the run then completes with both nodes offline.
        let (mut alice, mut bob, schedule) = fig1_pair(6);
        let mut rng = RcbRng::new(11);
        let mut adv = NoJam;
        let partition = Partition::pair();
        let out = run_exact_faulted(
            &mut [&mut alice, &mut bob],
            &mut adv,
            &schedule,
            &partition,
            &mut rng,
            ExactConfig::default(),
            None,
            &FaultPlan::none().with_battery(1),
        );
        assert!(out.completed, "dead nodes count as halted");
        assert!(
            out.slots < 4096,
            "both batteries die within a few phases, got {}",
            out.slots
        );
        for i in 0..2 {
            let cost = out.ledger.node_cost(i);
            assert!(
                cost < 256,
                "node {i}: cap 1 + at most one period of overshoot, got {cost}"
            );
        }
    }

    #[test]
    fn crashed_node_sleeps_through_its_window() {
        // Crash Bob for the entire run: he never acts, so his ledger stays
        // empty and Alice eventually gives up on her own.
        let (mut alice, mut bob, schedule) = fig1_pair(6);
        let mut rng = RcbRng::new(12);
        let mut adv = NoJam;
        let partition = Partition::pair();
        let out = run_exact_faulted(
            &mut [&mut alice, &mut bob],
            &mut adv,
            &schedule,
            &partition,
            &mut rng,
            ExactConfig::default(),
            None,
            &FaultPlan::none().with_crash(1, 0, u64::MAX, false),
        );
        assert_eq!(out.ledger.node_cost(1), 0, "radio off costs nothing");
        assert!(out.ledger.node_cost(0) > 0, "Alice still runs");
    }

    #[test]
    #[should_panic]
    fn partition_size_mismatch_panics() {
        let (mut alice, _, schedule) = fig1_pair(5);
        let mut rng = RcbRng::new(10);
        let mut adv = NoJam;
        let partition = Partition::pair(); // 2 slots, 1 protocol
        run_exact(
            &mut [&mut alice],
            &mut adv,
            &schedule,
            &partition,
            &mut rng,
            ExactConfig::default(),
            None,
        );
    }
}
