//! Cooperative deadlines and graceful interruption.
//!
//! A [`Deadline`] bundles an optional wall-clock expiry with an optional
//! cancellation flag. It is threaded *by reference* through the executor
//! work loops and the engine slot loops; each checkpoint calls
//! [`Deadline::exceeded`], which consumes **no RNG** — so an unbounded
//! deadline is a byte-identical no-op on every seeded code path, and a
//! bounded one only changes *where* a run stops, never what any completed
//! trial computes.
//!
//! Two granularities exist, with different determinism contracts:
//!
//! * **Run-level** (executor): checked *between* trials/cells. Work in
//!   flight finishes normally, so every completed result is bit-identical
//!   to the same trial in an uninterrupted run and safe to journal.
//! * **Trial-level** (engine slot loops): checked inside the hot loop at a
//!   coarse cadence. A trial cut off mid-flight reports
//!   `SimError::DeadlineExceeded` with its partial outcome; where it stops
//!   depends on wall-clock speed, so such results are *never* journaled —
//!   a resume re-runs them from the seed fold.
//!
//! [`install_sigint_handler`] latches a process-global flag on the first
//! Ctrl-C (and re-arms the default disposition so a second Ctrl-C
//! force-kills); binaries fold that flag into their run deadline with
//! [`Deadline::with_cancel`] to get finish-in-flight-then-flush semantics.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// A cooperative cancellation token: wall-clock expiry, a shared cancel
/// flag, neither, or both. `Copy`, cheap to pass by value or reference.
#[derive(Debug, Clone, Copy, Default)]
pub struct Deadline {
    expires_at: Option<Instant>,
    cancel: Option<&'static AtomicBool>,
}

impl Deadline {
    /// The unbounded deadline: never expires, never cancelled.
    pub const NONE: Deadline = Deadline {
        expires_at: None,
        cancel: None,
    };

    /// Expires `budget` from now.
    pub fn after(budget: Duration) -> Deadline {
        Deadline {
            expires_at: Some(Instant::now() + budget),
            cancel: None,
        }
    }

    /// Expires at `instant`.
    pub fn at(instant: Instant) -> Deadline {
        Deadline {
            expires_at: Some(instant),
            cancel: None,
        }
    }

    /// Adds a cancellation flag (e.g. the SIGINT latch) to this deadline.
    pub fn with_cancel(mut self, flag: &'static AtomicBool) -> Deadline {
        self.cancel = Some(flag);
        self
    }

    /// `true` when no expiry and no cancel flag are set — callers use this
    /// to skip checkpoint overhead entirely on the default path.
    pub fn is_unbounded(&self) -> bool {
        self.expires_at.is_none() && self.cancel.is_none()
    }

    /// Has the deadline passed or the cancel flag been raised?
    #[inline]
    pub fn exceeded(&self) -> bool {
        if let Some(flag) = self.cancel {
            if flag.load(Ordering::Relaxed) {
                return true;
            }
        }
        match self.expires_at {
            Some(t) => Instant::now() >= t,
            None => false,
        }
    }

    /// The tighter of two deadlines: earliest expiry, and a cancel flag
    /// from either side (`self`'s wins if both carry one).
    pub fn intersect(self, other: Deadline) -> Deadline {
        let expires_at = match (self.expires_at, other.expires_at) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        Deadline {
            expires_at,
            cancel: self.cancel.or(other.cancel),
        }
    }
}

/// Process-global latch set by the first SIGINT.
static INTERRUPTED: AtomicBool = AtomicBool::new(false);

/// `true` once SIGINT has been received (after
/// [`install_sigint_handler`]).
pub fn interrupted() -> bool {
    INTERRUPTED.load(Ordering::Relaxed)
}

/// Test/driver hook: raise or clear the interrupt latch by hand.
pub fn set_interrupted(value: bool) {
    INTERRUPTED.store(value, Ordering::Relaxed);
}

#[cfg(unix)]
mod sigint {
    use std::sync::atomic::Ordering;

    // std already links libc on unix; declaring `signal` here avoids a
    // dependency on the `libc` crate (the container has no registry
    // access and the vendor tree carries no such stub).
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    const SIGINT: i32 = 2;
    const SIG_DFL: usize = 0;
    const SIG_ERR: usize = usize::MAX;

    extern "C" fn on_sigint(_signum: i32) {
        super::INTERRUPTED.store(true, Ordering::Relaxed);
        // Re-arm the default disposition: the first Ctrl-C requests a
        // graceful finish-and-flush, a second one force-kills. Both calls
        // here are async-signal-safe (an atomic store and `signal`).
        unsafe {
            signal(SIGINT, SIG_DFL);
        }
    }

    pub fn install() -> bool {
        let handler = on_sigint as extern "C" fn(i32) as *const () as usize;
        unsafe { signal(SIGINT, handler) != SIG_ERR }
    }
}

/// Installs the graceful-interrupt handler and returns the latch to fold
/// into a [`Deadline`] via [`Deadline::with_cancel`]. Idempotent. Returns
/// the flag even where no handler can be installed (non-unix), so callers
/// need no platform branches; the flag simply never trips there.
pub fn install_sigint_handler() -> &'static AtomicBool {
    #[cfg(unix)]
    {
        let _ = sigint::install();
    }
    &INTERRUPTED
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_deadline_never_fires() {
        let d = Deadline::NONE;
        assert!(d.is_unbounded());
        assert!(!d.exceeded());
    }

    #[test]
    fn elapsed_deadline_fires() {
        let d = Deadline::after(Duration::ZERO);
        assert!(!d.is_unbounded());
        assert!(d.exceeded());
        let far = Deadline::after(Duration::from_secs(3600));
        assert!(!far.exceeded());
    }

    #[test]
    fn cancel_flag_fires_independent_of_clock() {
        static FLAG: AtomicBool = AtomicBool::new(false);
        let d = Deadline::NONE.with_cancel(&FLAG);
        assert!(!d.is_unbounded());
        assert!(!d.exceeded());
        FLAG.store(true, Ordering::Relaxed);
        assert!(d.exceeded());
        FLAG.store(false, Ordering::Relaxed);
    }

    #[test]
    fn intersect_takes_the_earlier_expiry_and_either_flag() {
        static FLAG: AtomicBool = AtomicBool::new(false);
        let soon = Instant::now();
        let late = soon + Duration::from_secs(3600);
        let a = Deadline::at(soon);
        let b = Deadline::at(late).with_cancel(&FLAG);
        let both = b.intersect(a);
        assert!(both.exceeded(), "earlier expiry must win");
        let unbounded = Deadline::NONE.intersect(Deadline::NONE);
        assert!(unbounded.is_unbounded());
        let flagged = Deadline::NONE.intersect(Deadline::NONE.with_cancel(&FLAG));
        assert!(!flagged.is_unbounded());
    }

    #[test]
    fn interrupt_latch_reads_back() {
        // Serialise with any other test touching the latch via set/reset.
        set_interrupted(false);
        assert!(!interrupted());
        set_interrupted(true);
        assert!(interrupted());
        set_interrupted(false);
    }
}
