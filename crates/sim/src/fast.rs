//! Fast 1-to-n engine: samples whole repetitions at once.
//!
//! Per repetition of epoch `i` (`2^i` slots):
//!
//! 1. every live node's send slots and listen slots are sampled as exact
//!    Bernoulli processes (geometric skips), with listen slots that collide
//!    with the node's own send slots dropped (a radio cannot do both — the
//!    same rule the slot adapter uses);
//! 2. all send events are sorted by slot and collapsed into per-slot
//!    channel states (single `m` / single noise / collision);
//! 3. every listen event is resolved against the jam plan and the channel
//!    state — observations therefore remain **fully coupled across nodes**
//!    (two listeners of the same slot hear the same thing), which Lemma 6
//!    style properties depend on;
//! 4. each node's `(clear, messages)` counts feed
//!    [`OneToNNode::end_repetition`] — the same state machine the exact
//!    engine drives.
//!
//! Work per repetition is `O(events·log(senders))`, independent of `2^i`.

use rcb_adversary::traits::{RepetitionAdversary, RepetitionContext, RepetitionSummary};
use rcb_core::one_to_n::node::OneToNNode;
use rcb_core::one_to_n::params::OneToNParams;
use rcb_mathkit::rng::RcbRng;
use rcb_mathkit::sample::{bernoulli, sample_slots_into};
use serde::{Deserialize, Serialize};

use crate::deadline::Deadline;
use crate::error::SimError;
use crate::faults::FaultPlan;
use crate::outcome::BroadcastOutcome;

/// Limits for the fast broadcast engine.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FastConfig {
    /// Hard cap on the epoch index; runs reaching it are truncated. (Bounds
    /// the tiny-probability executions whose expected cost the paper's
    /// safety valve exists to cap.)
    pub max_epoch: u32,
}

impl Default for FastConfig {
    fn default() -> Self {
        Self { max_epoch: 40 }
    }
}

/// Per-slot channel content, collapsed from the send events of one
/// repetition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotContent {
    /// Exactly one sender, transmitting `m`; the field is the sender id.
    Message(u32),
    /// Exactly one sender, transmitting noise (an uninformed node).
    SingleNoise,
    /// Two or more senders.
    Collision,
}

/// Observer hook for instrumented runs (dynamics experiment E10): called
/// after every repetition epilogue with the full node states.
pub trait BroadcastObserver {
    fn on_repetition(&mut self, epoch: u32, period: u64, jammed_slots: u64, nodes: &[OneToNNode]);
}

/// The no-op observer.
impl BroadcastObserver for () {
    fn on_repetition(&mut self, _: u32, _: u64, _: u64, _: &[OneToNNode]) {}
}

/// Runs one 1-to-n execution: node 0 is the designated sender.
///
/// ```
/// use rcb_sim::fast::{run_broadcast, FastConfig};
/// use rcb_adversary::rep_strategies::NoJamRep;
/// use rcb_core::one_to_n::OneToNParams;
/// use rcb_mathkit::rng::RcbRng;
///
/// let params = OneToNParams::practical();
/// let mut rng = RcbRng::new(7);
/// let out = run_broadcast(&params, 16, &mut NoJamRep, &mut rng, FastConfig::default());
/// assert!(out.all_informed && out.all_terminated);
/// ```
pub fn run_broadcast(
    params: &OneToNParams,
    n: usize,
    adversary: &mut dyn RepetitionAdversary,
    rng: &mut RcbRng,
    config: FastConfig,
) -> BroadcastOutcome {
    run_broadcast_from(params, n, &[0], adversary, rng, config, &mut ())
}

/// [`run_broadcast`] with a per-repetition observer.
pub fn run_broadcast_observed(
    params: &OneToNParams,
    n: usize,
    adversary: &mut dyn RepetitionAdversary,
    rng: &mut RcbRng,
    config: FastConfig,
    observer: &mut dyn BroadcastObserver,
) -> BroadcastOutcome {
    run_broadcast_from(params, n, &[0], adversary, rng, config, observer)
}

/// Multi-source variant: every node in `sources` starts informed.
///
/// Figure 2 never uses the fact that exactly one node holds `m` initially —
/// the analysis works for any informed set `A` with `|A| ≥ 1` (Lemma 9
/// explicitly tracks a growing `A`). Multiple sources simply shorten the
/// dissemination phase; rates, helper logic, and termination are untouched.
pub fn run_broadcast_from(
    params: &OneToNParams,
    n: usize,
    sources: &[usize],
    adversary: &mut dyn RepetitionAdversary,
    rng: &mut RcbRng,
    config: FastConfig,
    observer: &mut dyn BroadcastObserver,
) -> BroadcastOutcome {
    run_broadcast_core(
        params,
        n,
        sources,
        adversary,
        rng,
        config,
        observer,
        &FaultPlan::none(),
        &Deadline::NONE,
    )
    .0
}

/// [`run_broadcast_from`] with a fault-injection plan (see
/// [`crate::faults`]) layered between the channel and the receivers.
///
/// Semantics match the exact engine: crashed and battery-dead nodes are
/// radio-off (no sampling, no coin flips) while their protocol clock keeps
/// ticking through zero-count repetition epilogues; the loss coin is drawn
/// only on decodable `m` receptions; skewed boundary slots decode as noise;
/// the battery gauge is sampled at repetition boundaries, so overshoot is
/// at most one repetition of activity. Battery-dead nodes count as halted
/// for the completion check.
#[allow(clippy::too_many_arguments)]
pub fn run_broadcast_faulted(
    params: &OneToNParams,
    n: usize,
    sources: &[usize],
    adversary: &mut dyn RepetitionAdversary,
    rng: &mut RcbRng,
    config: FastConfig,
    observer: &mut dyn BroadcastObserver,
    faults: &FaultPlan,
) -> BroadcastOutcome {
    run_broadcast_core(
        params,
        n,
        sources,
        adversary,
        rng,
        config,
        observer,
        faults,
        &Deadline::NONE,
    )
    .0
}

/// [`run_broadcast_faulted`] that reports budget exhaustion as a typed
/// [`SimError`] instead of a silent `truncated = true`.
#[allow(clippy::too_many_arguments)]
pub fn run_broadcast_checked(
    params: &OneToNParams,
    n: usize,
    sources: &[usize],
    adversary: &mut dyn RepetitionAdversary,
    rng: &mut RcbRng,
    config: FastConfig,
    observer: &mut dyn BroadcastObserver,
    faults: &FaultPlan,
) -> Result<BroadcastOutcome, SimError> {
    match run_broadcast_core(
        params,
        n,
        sources,
        adversary,
        rng,
        config,
        observer,
        faults,
        &Deadline::NONE,
    ) {
        (outcome, None) => Ok(outcome),
        (_, Some(err)) => Err(err),
    }
}

/// Retained per-run state of the fast broadcast engine: the node state
/// machines, cost/fault bookkeeping, and every reusable sampling buffer.
/// One `FastState` serves a whole [`BroadcastSession`]; the legacy entry
/// points build a fresh one per run, so both paths execute the identical
/// loop body.
#[derive(Debug)]
struct FastState {
    nodes: Vec<OneToNNode>,
    costs: Vec<u64>,
    dead: Vec<bool>,
    offline: Vec<bool>,
    send_events: Vec<(u64, u32)>,
    slot_contents: Vec<(u64, SlotContent)>,
    scratch: Vec<u64>,
    send_counts: Vec<u64>,
    clear_counts: Vec<u64>,
    msg_counts: Vec<u64>,
}

impl FastState {
    fn new(params: &OneToNParams, n: usize, sources: &[usize]) -> Self {
        assert!(n >= 1, "need at least one node");
        assert!(!sources.is_empty(), "need at least one source");
        assert!(sources.iter().all(|&s| s < n), "source ids must be < n");
        Self {
            nodes: (0..n)
                .map(|u| OneToNNode::new(params, sources.contains(&u)))
                .collect(),
            costs: vec![0; n],
            dead: vec![false; n],
            offline: vec![false; n],
            send_events: Vec::new(),
            slot_contents: Vec::new(),
            scratch: Vec::new(),
            send_counts: vec![0; n],
            clear_counts: vec![0; n],
            msg_counts: vec![0; n],
        }
    }

    /// Resets every node and counter to the just-constructed state while
    /// keeping all ten allocations (the session layer's re-arm path).
    fn rearm(&mut self, params: &OneToNParams, sources: &[usize]) {
        for (u, node) in self.nodes.iter_mut().enumerate() {
            node.rearm(params, sources.contains(&u));
        }
        self.costs.fill(0);
        self.dead.fill(false);
        self.offline.fill(false);
        // The loop zeroes these as it goes, but a truncated run can leave
        // residue in the last repetition's counts.
        self.send_counts.fill(0);
        self.clear_counts.fill(0);
        self.msg_counts.fill(0);
    }
}

/// A re-armable fast-broadcast session: one set of allocations (node
/// vector, cost counters, sampling buffers) serves a stream of runs.
/// [`rearm`](Self::rearm) returns everything to the just-constructed
/// state in place; the golden equivalence suite pins that a re-armed run
/// is bit-identical to a fresh [`run_broadcast_from`] at the same seed.
#[derive(Debug)]
pub struct BroadcastSession {
    params: OneToNParams,
    sources: Vec<usize>,
    config: FastConfig,
    faults: FaultPlan,
    state: FastState,
    rng: RcbRng,
}

impl BroadcastSession {
    pub fn new(
        params: OneToNParams,
        n: usize,
        sources: Vec<usize>,
        config: FastConfig,
        faults: FaultPlan,
        seed: u64,
    ) -> Self {
        assert!(faults.validate().is_ok(), "invalid fault plan");
        let state = FastState::new(&params, n, &sources);
        Self {
            params,
            sources,
            config,
            faults,
            state,
            rng: RcbRng::new(seed),
        }
    }

    /// Re-arms the session to slot 0 on a fresh RNG stream, reusing every
    /// allocation.
    pub fn rearm(&mut self, seed: u64) {
        self.state.rearm(&self.params, &self.sources);
        self.rng = RcbRng::new(seed);
    }

    /// Runs one execution against `adversary` on the session's RNG. The
    /// session must be armed (just constructed, or [`rearm`](Self::rearm)
    /// since the previous run).
    pub fn run(
        &mut self,
        adversary: &mut dyn RepetitionAdversary,
        deadline: &Deadline,
    ) -> (BroadcastOutcome, Option<SimError>) {
        run_broadcast_in(
            &mut self.state,
            &self.params,
            adversary,
            &mut self.rng,
            self.config,
            &mut (),
            &self.faults,
            deadline,
        )
    }
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn run_broadcast_core(
    params: &OneToNParams,
    n: usize,
    sources: &[usize],
    adversary: &mut dyn RepetitionAdversary,
    rng: &mut RcbRng,
    config: FastConfig,
    observer: &mut dyn BroadcastObserver,
    faults: &FaultPlan,
    deadline: &Deadline,
) -> (BroadcastOutcome, Option<SimError>) {
    let mut state = FastState::new(params, n, sources);
    run_broadcast_in(
        &mut state, params, adversary, rng, config, observer, faults, deadline,
    )
}

#[allow(clippy::too_many_arguments)]
fn run_broadcast_in(
    state: &mut FastState,
    params: &OneToNParams,
    adversary: &mut dyn RepetitionAdversary,
    rng: &mut RcbRng,
    config: FastConfig,
    observer: &mut dyn BroadcastObserver,
    faults: &FaultPlan,
    deadline: &Deadline,
) -> (BroadcastOutcome, Option<SimError>) {
    let FastState {
        nodes,
        costs,
        dead,
        offline,
        send_events,
        slot_contents,
        scratch,
        send_counts,
        clear_counts,
        msg_counts,
    } = state;
    let n = nodes.len();
    let mut adversary_cost = 0u64;
    let mut slots_total = 0u64;
    let mut period = 0u64;
    let mut truncated = true;

    // Fault state. The dedicated RNG stream is derived only for non-empty
    // plans, so `FaultPlan::none()` leaves the caller's stream — and hence
    // every sample below — bit-identical to the unfaulted engine.
    debug_assert!(faults.validate().is_ok(), "invalid fault plan");
    let has_faults = !faults.is_none();
    let mut fault_rng = if has_faults { Some(rng.split()) } else { None };
    let loss_p = faults.loss_p();
    let lost = |frng: &mut Option<RcbRng>| match frng {
        Some(r) if loss_p > 0.0 => bernoulli(r, loss_p),
        _ => false,
    };
    let mut pending_reboot = faults.reboot_at();

    // Deadline checkpoints sit at repetition boundaries (the granularity
    // of all other bookkeeping) and consume no RNG; the `is_unbounded`
    // gate keeps the clock read off the default path entirely.
    let bounded = !deadline.is_unbounded();
    let mut deadline_hit = false;

    let mut epoch = params.first_epoch;
    'epochs: while epoch <= config.max_epoch {
        let len = params.slots(epoch);
        let reps = params.reps(epoch);
        for _ in 0..reps {
            if bounded && deadline.exceeded() {
                deadline_hit = true;
                break 'epochs;
            }
            if has_faults {
                // Repetition-boundary bookkeeping, mirroring the exact
                // engine's period boundary: sample the battery gauge, fire
                // a pending state-losing reboot, and refresh which radios
                // are off this period.
                if let Some(cap) = faults.battery_capacity() {
                    for (u, d) in dead.iter_mut().enumerate() {
                        *d = *d || costs[u] >= cap;
                    }
                }
                if let Some((node, at)) = pending_reboot {
                    if period >= at {
                        nodes[node].reboot(params);
                        pending_reboot = None;
                    }
                }
                for (u, off) in offline.iter_mut().enumerate() {
                    *off = dead[u] || faults.crashed(u, period);
                }
            }
            if nodes
                .iter()
                .zip(&**dead)
                .all(|(v, &d)| v.is_terminated() || d)
            {
                truncated = false;
                break 'epochs;
            }
            let active = nodes
                .iter()
                .zip(&**offline)
                .filter(|(v, &off)| !v.is_terminated() && !off)
                .count();
            let ctx = RepetitionContext {
                epoch,
                repetition: period,
                slots: len,
                active_nodes: active,
            };
            let plan = adversary.plan(&ctx);
            adversary_cost += plan.jam_count(len);

            // 1. Send events. Radio-off nodes sample nothing: no coin
            // flips, so their RNG consumption pauses with the radio.
            send_events.clear();
            for (u, node) in nodes.iter().enumerate() {
                send_counts[u] = 0;
                if node.is_terminated() || offline[u] {
                    continue;
                }
                sample_slots_into(rng, len, node.send_prob(params), scratch);
                send_counts[u] = scratch.len() as u64;
                costs[u] += scratch.len() as u64;
                for &t in scratch.iter() {
                    send_events.push((t, u as u32));
                }
            }
            send_events.sort_unstable();

            // 2. Collapse into per-slot channel content, counting `m`
            // slots as they are classified (the epilogue needs the total,
            // and grouping here is cheaper than re-scanning the contents).
            slot_contents.clear();
            let mut message_slots = 0u64;
            let mut k = 0usize;
            while k < send_events.len() {
                let (t, u) = send_events[k];
                let mut j = k + 1;
                while j < send_events.len() && send_events[j].0 == t {
                    j += 1;
                }
                let content = if j - k >= 2 {
                    SlotContent::Collision
                } else if nodes[u as usize].sends_message() {
                    message_slots += 1;
                    SlotContent::Message(u)
                } else {
                    SlotContent::SingleNoise
                };
                slot_contents.push((t, content));
                k = j;
            }

            // 3. Listen events.
            let mut total_listens = 0u64;
            for (u, node) in nodes.iter().enumerate() {
                if node.is_terminated() || offline[u] {
                    continue;
                }
                let skew = faults.skew_slots(u);
                sample_slots_into(rng, len, node.listen_prob(params), scratch);
                // Drop listen slots where this node itself transmits.
                // Own sends for node u are a sorted subsequence of
                // send_events; rescan them via binary search on the full
                // sorted list (senders per slot are few).
                // Nodes that sent nothing this repetition (the common case
                // at low send rates) skip the lookup outright.
                let sent = send_counts[u] != 0;
                for &t in scratch.iter() {
                    if sent && slot_in_own_sends(send_events, t, u as u32) {
                        continue;
                    }
                    costs[u] += 1;
                    total_listens += 1;
                    if t < skew {
                        continue; // clock skew: boundary slots decode as noise
                    }
                    if plan.is_jammed(t, len) {
                        continue; // noise
                    }
                    match slot_contents.binary_search_by_key(&t, |&(s, _)| s) {
                        Err(_) => clear_counts[u] += 1,
                        Ok(idx) => match slot_contents[idx].1 {
                            SlotContent::Message(sender) => {
                                debug_assert_ne!(sender, u as u32);
                                // The loss coin is drawn only on decodable
                                // payload receptions, same as the exact
                                // engine's receiver condition.
                                if !lost(&mut fault_rng) {
                                    msg_counts[u] += 1;
                                }
                            }
                            SlotContent::SingleNoise | SlotContent::Collision => {}
                        },
                    }
                }
            }

            // 4. Repetition epilogue.
            for (u, node) in nodes.iter_mut().enumerate() {
                if node.is_terminated() {
                    continue;
                }
                node.end_repetition(params, clear_counts[u], msg_counts[u]);
                clear_counts[u] = 0;
                msg_counts[u] = 0;
            }
            adversary.observe(
                &ctx,
                &RepetitionSummary {
                    message_slots,
                    busy_slots: slot_contents.len() as u64,
                    jammed_slots: plan.jam_count(len),
                    listen_actions: total_listens,
                    send_actions: send_events.len() as u64,
                },
            );
            observer.on_repetition(epoch, period, plan.jam_count(len), nodes);
            slots_total += len;
            period += 1;
        }
        if nodes.iter().all(|v| v.is_terminated()) {
            truncated = false;
            break;
        }
        epoch += 1;
        if epoch <= config.max_epoch {
            for node in nodes.iter_mut() {
                node.begin_epoch(epoch, params);
            }
        }
    }

    let informed = nodes.iter().filter(|v| v.ever_informed()).count();
    let safety = nodes
        .iter()
        .filter(|v| v.term_reason() == Some(rcb_core::one_to_n::TermReason::Safety))
        .count();
    let err = if deadline_hit {
        Some(SimError::DeadlineExceeded { slots: slots_total })
    } else {
        truncated.then_some(SimError::EpochBudgetExhausted {
            max_epoch: config.max_epoch,
            slots: slots_total,
        })
    };
    (
        BroadcastOutcome {
            n,
            informed,
            all_informed: informed == n,
            all_terminated: nodes.iter().all(|v| v.is_terminated()),
            safety_terminations: safety,
            node_costs: costs.clone(),
            adversary_cost,
            slots: slots_total,
            last_epoch: epoch.min(config.max_epoch),
            truncated,
        },
        err,
    )
}

/// Whether `(t, u)` occurs in the sorted `send_events`.
fn slot_in_own_sends(send_events: &[(u64, u32)], t: u64, u: u32) -> bool {
    let mut idx = send_events.partition_point(|&(s, _)| s < t);
    while idx < send_events.len() && send_events[idx].0 == t {
        if send_events[idx].1 == u {
            return true;
        }
        idx += 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcb_adversary::rep_strategies::{BudgetedRepBlocker, NoJamRep};

    fn params() -> OneToNParams {
        OneToNParams::practical()
    }

    #[test]
    fn single_node_terminates_alone() {
        // n = 1: the sender hears only silence, S grows, and the safety
        // valve or helper logic must terminate it with bounded cost.
        let p = params();
        let mut rng = RcbRng::new(1);
        let mut adv = NoJamRep;
        let out = run_broadcast(&p, 1, &mut adv, &mut rng, FastConfig::default());
        assert!(out.all_terminated, "last epoch {}", out.last_epoch);
        assert!(out.all_informed);
        assert!(!out.truncated);
    }

    #[test]
    fn unjammed_broadcast_informs_everyone() {
        let p = params();
        let mut ok = 0;
        let trials = 10;
        for seed in 0..trials {
            let mut rng = RcbRng::new(seed);
            let mut adv = NoJamRep;
            let out = run_broadcast(&p, 16, &mut adv, &mut rng, FastConfig::default());
            assert!(
                !out.truncated,
                "seed {seed}: truncated at epoch {}",
                out.last_epoch
            );
            if out.all_informed && out.all_terminated {
                ok += 1;
            }
        }
        assert!(ok >= 9, "informed+terminated in {ok}/{trials} runs");
    }

    #[test]
    fn termination_happens_near_the_ideal_epoch() {
        let p = params();
        let n = 32;
        let mut rng = RcbRng::new(3);
        let mut adv = NoJamRep;
        let out = run_broadcast(&p, n, &mut adv, &mut rng, FastConfig::default());
        let ideal = p.ideal_epoch(n);
        assert!(
            out.last_epoch <= ideal + 3,
            "terminated at epoch {} vs ideal {ideal}",
            out.last_epoch
        );
    }

    #[test]
    fn jamming_charges_adversary_and_inflates_cost() {
        let p = params();
        let n = 16;
        let mut rng = RcbRng::new(4);
        let mut adv_free = NoJamRep;
        let free = run_broadcast(&p, n, &mut adv_free, &mut rng, FastConfig::default());

        let mut rng = RcbRng::new(4);
        // T must comfortably exceed the unjammed slot total: at comparable
        // budgets blanket jamming can even *reduce* node cost (blocked
        // epochs suppress the expensive growth-phase listening).
        let budget = 16 * free.slots;
        let mut adv = BudgetedRepBlocker::new(budget, 1.0);
        let jammed = run_broadcast(&p, n, &mut adv, &mut rng, FastConfig::default());
        assert!(jammed.adversary_cost > 0);
        assert!(
            jammed.max_cost() > free.max_cost(),
            "jammed {} vs free {}",
            jammed.max_cost(),
            free.max_cost()
        );
        assert!(jammed.slots > free.slots);
        assert!(jammed.all_informed, "budget exhausted ⇒ delivery resumes");
    }

    #[test]
    fn per_node_cost_shrinks_as_n_grows() {
        // The headline of Theorem 3: bigger systems pay less per node under
        // the same attack budget.
        let p = params();
        let budget = 2_000_000u64;
        let mean_cost = |n: usize, seed: u64| {
            let mut total = 0.0;
            let trials = 3;
            for s in 0..trials {
                let mut rng = RcbRng::new(seed + s);
                let mut adv = BudgetedRepBlocker::new(budget, 1.0);
                let out = run_broadcast(&p, n, &mut adv, &mut rng, FastConfig::default());
                total += out.mean_cost();
            }
            total / trials as f64
        };
        let small = mean_cost(8, 10);
        let large = mean_cost(64, 20);
        assert!(
            large < small,
            "per-node cost should fall with n: n=8 → {small}, n=128 → {large}"
        );
    }

    #[test]
    fn slot_in_own_sends_lookup() {
        let events = [(1u64, 0u32), (3, 1), (3, 2), (7, 0)];
        assert!(slot_in_own_sends(&events, 1, 0));
        assert!(!slot_in_own_sends(&events, 1, 1));
        assert!(slot_in_own_sends(&events, 3, 2));
        assert!(!slot_in_own_sends(&events, 3, 0));
        assert!(!slot_in_own_sends(&events, 5, 0));
    }

    #[test]
    fn multi_source_broadcast_informs_and_is_no_slower() {
        let p = params();
        let n = 24;
        let mut single_slots = 0u64;
        let mut multi_slots = 0u64;
        let trials = 6;
        for seed in 0..trials {
            let mut rng = RcbRng::new(400 + seed);
            let mut adv = NoJamRep;
            let out = run_broadcast_from(
                &p,
                n,
                &[0],
                &mut adv,
                &mut rng,
                FastConfig::default(),
                &mut (),
            );
            assert!(out.all_informed);
            single_slots += out.slots;

            let mut rng = RcbRng::new(800 + seed);
            let mut adv = NoJamRep;
            let out = run_broadcast_from(
                &p,
                n,
                &[0, 5, 11, 17],
                &mut adv,
                &mut rng,
                FastConfig::default(),
                &mut (),
            );
            assert!(out.all_informed);
            assert!(out.informed == n);
            multi_slots += out.slots;
        }
        // Extra sources can only help dissemination; allow slack for the
        // epoch-granular termination.
        assert!(
            multi_slots <= single_slots + single_slots / 2,
            "multi {multi_slots} vs single {single_slots}"
        );
    }

    #[test]
    #[should_panic]
    fn out_of_range_source_panics() {
        let p = params();
        let mut rng = RcbRng::new(1);
        let mut adv = NoJamRep;
        run_broadcast_from(
            &p,
            4,
            &[4],
            &mut adv,
            &mut rng,
            FastConfig::default(),
            &mut (),
        );
    }

    #[test]
    fn epoch_cap_truncates() {
        let p = params();
        let mut rng = RcbRng::new(5);
        // Unlimited full blocking: nobody can ever terminate.
        let mut adv = rcb_adversary::rep_strategies::SuffixFractionRep::new(1.0);
        let out = run_broadcast(
            &p,
            4,
            &mut adv,
            &mut rng,
            FastConfig {
                max_epoch: p.first_epoch + 2,
            },
        );
        assert!(out.truncated);
        assert!(!out.all_terminated);
        assert_eq!(out.last_epoch, p.first_epoch + 2);
    }

    #[test]
    fn checked_run_reports_epoch_cap_as_typed_error() {
        let p = params();
        let mut rng = RcbRng::new(5);
        let mut adv = rcb_adversary::rep_strategies::SuffixFractionRep::new(1.0);
        let err = run_broadcast_checked(
            &p,
            4,
            &[0],
            &mut adv,
            &mut rng,
            FastConfig {
                max_epoch: p.first_epoch + 2,
            },
            &mut (),
            &FaultPlan::none(),
        )
        .expect_err("fully blocked nodes never terminate");
        assert!(matches!(
            err,
            SimError::EpochBudgetExhausted { max_epoch, .. } if max_epoch == p.first_epoch + 2
        ));
    }

    #[test]
    fn an_elapsed_deadline_truncates_with_a_typed_error() {
        let p = params();
        let mut rng = RcbRng::new(7);
        let (out, err) = run_broadcast_core(
            &p,
            16,
            &[0],
            &mut NoJamRep,
            &mut rng,
            FastConfig::default(),
            &mut (),
            &FaultPlan::none(),
            &Deadline::after(std::time::Duration::ZERO),
        );
        assert!(out.truncated);
        assert_eq!(out.slots, 0, "checkpoint fires before the first repetition");
        assert_eq!(err, Some(SimError::DeadlineExceeded { slots: 0 }));
    }

    #[test]
    fn empty_fault_plan_is_bit_identical() {
        let p = params();
        for seed in 0..10u64 {
            let mut rng_a = RcbRng::new(seed);
            let mut adv = BudgetedRepBlocker::new(50_000, 1.0);
            let plain = run_broadcast(&p, 12, &mut adv, &mut rng_a, FastConfig::default());

            let mut rng_b = RcbRng::new(seed);
            let mut adv = BudgetedRepBlocker::new(50_000, 1.0);
            let faulted = run_broadcast_faulted(
                &p,
                12,
                &[0],
                &mut adv,
                &mut rng_b,
                FastConfig::default(),
                &mut (),
                &FaultPlan::none(),
            );
            assert_eq!(plain.node_costs, faulted.node_costs, "seed {seed}");
            assert_eq!(plain.slots, faulted.slots, "seed {seed}");
            assert_eq!(plain.informed, faulted.informed, "seed {seed}");
            assert_eq!(plain.adversary_cost, faulted.adversary_cost);
            assert_eq!(rng_a, rng_b, "seed {seed}: RNG streams must not diverge");
        }
    }

    #[test]
    fn crash_restart_reconverges() {
        // Node 3 goes dark for six early periods and reboots with its
        // volatile state wiped. The informed helpers keep transmitting m,
        // so the rebooted node relearns it: dissemination degrades
        // gracefully instead of wedging.
        let p = params();
        let mut informed_runs = 0;
        let trials = 10;
        for seed in 0..trials {
            let mut rng = RcbRng::new(900 + seed);
            let mut adv = NoJamRep;
            let out = run_broadcast_faulted(
                &p,
                8,
                &[0],
                &mut adv,
                &mut rng,
                FastConfig::default(),
                &mut (),
                &FaultPlan::none().with_crash(3, 2, 6, true),
            );
            assert!(!out.truncated, "seed {seed}");
            if out.all_informed {
                informed_runs += 1;
            }
        }
        assert!(
            informed_runs >= 8,
            "re-converged in {informed_runs}/{trials} runs"
        );
    }

    #[test]
    fn lossy_reception_degrades_gracefully() {
        // 20% receiver-side loss slows dissemination but must not produce
        // a cliff: most runs still inform everyone.
        let p = params();
        let mut informed_runs = 0;
        let trials = 10;
        for seed in 0..trials {
            let mut rng = RcbRng::new(300 + seed);
            let mut adv = NoJamRep;
            let out = run_broadcast_faulted(
                &p,
                16,
                &[0],
                &mut adv,
                &mut rng,
                FastConfig::default(),
                &mut (),
                &FaultPlan::none().with_loss(0.2),
            );
            assert!(!out.truncated, "seed {seed}");
            if out.all_informed {
                informed_runs += 1;
            }
        }
        assert!(
            informed_runs >= 8,
            "informed in {informed_runs}/{trials} lossy runs"
        );
    }

    #[test]
    fn battery_brownout_caps_node_cost() {
        let p = params();
        let mut rng = RcbRng::new(9);
        let mut adv = NoJamRep;
        let plain = run_broadcast(&p, 8, &mut adv, &mut rng, FastConfig::default());

        let mut rng = RcbRng::new(9);
        let mut adv = NoJamRep;
        let capped = run_broadcast_faulted(
            &p,
            8,
            &[0],
            &mut adv,
            &mut rng,
            FastConfig::default(),
            &mut (),
            &FaultPlan::none().with_battery(20),
        );
        assert!(!capped.truncated, "dead nodes count as halted");
        assert!(
            capped.max_cost() < plain.max_cost(),
            "capped {} vs plain {}",
            capped.max_cost(),
            plain.max_cost()
        );
    }
}
