//! # rcb-sim
//!
//! Simulation engines and the Monte-Carlo trial runner.
//!
//! Two engines execute protocols against adversaries:
//!
//! * [`exact`] — the reference engine: every slot is resolved through
//!   `rcb_channel::resolve_slot` for an arbitrary set of
//!   [`SlotProtocol`](rcb_core::protocol::SlotProtocol) nodes and a
//!   [`SlotAdversary`](rcb_adversary::SlotAdversary). Faithful and general,
//!   cost `O(slots · n)`.
//! * [`duel`] / [`fast`] — the production engines: they exploit the
//!   protocols' period structure to sample only the *events* (sends,
//!   listens) instead of iterating silent slots. The sampling is exact —
//!   a Bernoulli process over a block is its Binomial count plus uniform
//!   positions, implemented by geometric skips in `rcb-mathkit` — so these
//!   engines agree with [`exact`] in distribution; integration tests
//!   cross-validate them.
//!
//! [`runner`] fans trials out over threads (std scoped threads, one
//! deterministic RNG stream per trial); [`executor`] generalises the same
//! deterministic work-stealing pattern to heterogeneous work lists —
//! cell-granular ([`executor::run_cells`]) and trial-granular across a
//! whole `ScenarioSpec` sweep ([`executor::run_specs`]) — and
//! [`lowerbound`] packages the Theorem 2 / Theorem 5 measurement games.
//!
//! [`faults`] layers deterministic, seeded *non-adversarial* failures —
//! lossy reception, crash–restart, clock skew, battery brownout — under
//! every engine via the `*_faulted` entry points; [`error`] carries the
//! typed harness failures ([`SimError`], [`TrialFailure`]) surfaced by the
//! `*_checked` entry points and [`runner::run_trials_isolated`].
//!
//! [`scenario`] is the **canonical front door**: a declarative
//! [`ScenarioSpec`] (workload, engine, adversary, faults, seed policy,
//! trials) with one checked run path that subsumes the per-engine
//! `run_*`/`_faulted`/`_checked` entry-point matrix. New code should build
//! a spec; the legacy entry points remain as thin wrappers over the same
//! cores for callers that already hold protocol/adversary instances.
//!
//! The crash-safety layer rides on top: [`deadline`] threads a cooperative
//! [`Deadline`]/cancellation token through the executor and the engine
//! slot loops (wall-clock budgets end in a typed
//! [`SimError::DeadlineExceeded`], never a silent clip), [`json`] is the
//! dependency-free JSON layer, and [`journal`] persists per-cell results
//! as an append-only, FNV-1a-checksummed JSONL file so interrupted sweeps
//! resume bit-identical to uninterrupted ones.

pub mod cohort;
pub mod conformance;
pub mod deadline;
pub mod duel;
pub mod error;
pub mod exact;
pub mod executor;
pub mod fast;
pub mod faults;
pub mod journal;
pub mod json;
pub mod lowerbound;
pub mod outcome;
pub mod reduction;
pub mod runner;
pub mod scenario;
pub mod session;

pub use cohort::{
    run_cohort, run_cohort_checked, run_cohort_faulted, run_cohort_from, run_cohort_instrumented,
    CohortConfig, CohortStats,
};
pub use conformance::{
    default_grid, run_grid, BroadcastCell, ConformanceConfig, DuelCell, GridReport,
};
pub use deadline::{install_sigint_handler, interrupted, Deadline};
pub use duel::{run_duel, run_duel_checked, run_duel_faulted, DuelConfig};
pub use error::{SimError, TrialFailure};
pub use exact::{run_exact, run_exact_checked, run_exact_faulted, ExactConfig, ExactOutcome};
pub use executor::{
    batch_checksums, run_cells, run_cells_ctl, run_specs, run_specs_ctl, CellsRun,
    QuarantinedTrial, SpecsControl, SpecsRun,
};
pub use fast::{
    run_broadcast, run_broadcast_checked, run_broadcast_faulted, run_broadcast_from,
    run_broadcast_observed, BroadcastObserver, FastConfig,
};
pub use faults::{BatteryFault, CrashFault, FaultConfigError, FaultPlan, LossFault, SkewFault};
pub use journal::{Journal, JournalError, JournalHeader};
pub use json::Json;
pub use outcome::{BroadcastOutcome, DuelOutcome};
pub use reduction::{simulate_reduction, ReductionOutcome};
pub use runner::{run_trials, run_trials_isolated, Parallelism};
pub use scenario::{
    find_scenario, fnv1a, fnv1a_bytes, registry, AdversarySpec, BroadcastWorkload, DuelProtocol,
    DuelWorkload, Engine, NamedScenario, Outcome, ScenarioSpec, SeedPolicy, Workload,
    FAST_STREAM_SALT, FNV_OFFSET,
};
