//! Minimal JSON tree, writer, and parser shared by the journal and the
//! perf telemetry files.
//!
//! The workspace's `serde` is an offline no-op stub (derives expand to
//! nothing), so on-disk artifacts — `BENCH_*.json`, run journals,
//! serialized `ScenarioSpec`s — are produced and consumed by this
//! hand-rolled module instead. It covers exactly the JSON subset those
//! schemas need — objects, arrays, strings, finite numbers, booleans,
//! null — and round-trips losslessly: numbers are written with Rust's
//! shortest `f64` representation, which `str::parse::<f64>` recovers
//! exactly.
//!
//! This module started life in `rcb-bench` next to the perf report code;
//! it moved here when the journal ([`crate::journal`]) needed the same
//! layer one crate lower; perf code imports it from here directly.

use std::fmt::Write as _;

/// A parsed JSON value. Object keys keep insertion order so emitted files
/// diff cleanly across runs.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn obj(entries: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            entries
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Object field lookup; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// Numeric field as `u64`; rejects negatives and non-integers.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= (1u64 << 53) as f64 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Single-line rendering with no whitespace — one JSONL record.
    /// Canonical for checksumming: a given tree always renders to the
    /// same byte sequence (keys keep insertion order, numbers use the
    /// shortest `f64` form).
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x}");
                } else {
                    out.push('0');
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => {
                // JSON has no NaN/Inf; metrics are finite by construction,
                // so degrade rather than emit an unparseable file.
                if x.is_finite() {
                    let _ = write!(out, "{x}");
                } else {
                    out.push('0');
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }

    /// Parses a complete JSON document (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {pos}", pos = *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => expect(bytes, pos, "null").map(|_| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|_| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|_| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(entries));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                let value = parse_value(bytes, pos)?;
                entries.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(entries));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos).map(Json::Num),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let unit = parse_hex4(bytes, *pos + 1)?;
                        *pos += 4;
                        // Surrogate pairs: JSON escapes non-BMP code points
                        // as UTF-16 pairs (`\uD83D\uDE00` is U+1F600),
                        // so a high surrogate must combine with an
                        // immediately following low one; either half alone
                        // encodes no scalar value and is rejected.
                        let code = if (0xD800..=0xDBFF).contains(&unit) {
                            if bytes.get(*pos + 1) != Some(&b'\\')
                                || bytes.get(*pos + 2) != Some(&b'u')
                            {
                                return Err("unpaired high surrogate in \\u escape".into());
                            }
                            let low = parse_hex4(bytes, *pos + 3)?;
                            if !(0xDC00..=0xDFFF).contains(&low) {
                                return Err("unpaired high surrogate in \\u escape".into());
                            }
                            *pos += 6;
                            0x1_0000 + ((unit - 0xD800) << 10) + (low - 0xDC00)
                        } else if (0xDC00..=0xDFFF).contains(&unit) {
                            return Err("unpaired low surrogate in \\u escape".into());
                        } else {
                            unit
                        };
                        out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so boundaries
                // are valid; find the next char boundary).
                let start = *pos;
                *pos += 1;
                while *pos < bytes.len() && (bytes[*pos] & 0xC0) == 0x80 {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&bytes[start..*pos]).unwrap());
            }
        }
    }
}

/// Four hex digits starting at `at` (the payload of a `\u` escape).
fn parse_hex4(bytes: &[u8], at: usize) -> Result<u32, String> {
    let hex = bytes.get(at..at + 4).ok_or("truncated \\u escape")?;
    let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
    u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape".to_string())
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<f64, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|x| x.is_finite())
        .ok_or_else(|| format!("bad number at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_and_reparses_a_nested_document() {
        let doc = Json::obj(vec![
            ("name", Json::Str("perf \"grid\"\n".into())),
            ("version", Json::Num(1.0)),
            ("ok", Json::Bool(true)),
            ("nothing", Json::Null),
            (
                "items",
                Json::Arr(vec![Json::Num(0.5), Json::Num(-3.25e-7), Json::Num(1e15)]),
            ),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
        ]);
        let text = doc.render();
        let back = Json::parse(&text).expect("reparse");
        assert_eq!(doc, back);
    }

    #[test]
    fn compact_rendering_is_one_line_and_reparses() {
        let doc = Json::obj(vec![
            ("cell", Json::Str("pass1/duel_clean".into())),
            ("xs", Json::Arr(vec![Json::Num(1.0), Json::Num(2.5)])),
            ("nested", Json::obj(vec![("ok", Json::Bool(true))])),
            ("none", Json::Null),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
        ]);
        let line = doc.render_compact();
        assert!(!line.contains('\n'), "compact must be one line: {line}");
        assert!(!line.contains(": "), "no pretty separators: {line}");
        assert_eq!(Json::parse(&line).expect("reparse"), doc);
        assert_eq!(
            line,
            r#"{"cell":"pass1/duel_clean","xs":[1,2.5],"nested":{"ok":true},"none":null,"empty_arr":[],"empty_obj":{}}"#
        );
    }

    #[test]
    fn compact_rendering_escapes_newlines_so_jsonl_stays_line_safe() {
        let doc = Json::Str("torn\nline\r\t\"q\"".into());
        let line = doc.render_compact();
        assert!(!line.contains('\n') && !line.contains('\r'), "{line}");
        assert_eq!(Json::parse(&line).expect("reparse"), doc);
    }

    #[test]
    fn accessors() {
        let doc = Json::obj(vec![
            ("n", Json::Num(42.0)),
            ("x", Json::Num(0.5)),
            ("s", Json::Str("hi".into())),
            ("a", Json::Arr(vec![Json::Num(1.0)])),
        ]);
        assert_eq!(doc.get("n").and_then(Json::as_u64), Some(42));
        assert_eq!(doc.get("x").and_then(Json::as_u64), None, "non-integer");
        assert_eq!(doc.get("x").and_then(Json::as_f64), Some(0.5));
        assert_eq!(doc.get("s").and_then(Json::as_str), Some("hi"));
        assert_eq!(
            doc.get("a").and_then(Json::as_arr).map(<[Json]>::len),
            Some(1)
        );
        assert!(doc.get("missing").is_none());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1, 2",
            "{\"a\" 1}",
            "{\"a\": 1} trailing",
            "\"unterminated",
            "nul",
            "1e999", // overflows to inf → rejected as non-finite
        ] {
            assert!(Json::parse(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn unicode_and_escape_round_trip() {
        let doc = Json::Str("π ≈ 3.14159 — \t \"done\"\u{1}".into());
        assert_eq!(Json::parse(&doc.render()).expect("reparse"), doc);
        // \u escapes in the input parse too.
        assert_eq!(
            Json::parse("\"\\u0041\\u00e9\"").expect("parse"),
            Json::Str("Aé".into())
        );
    }

    #[test]
    fn surrogate_pair_escapes_decode_to_non_bmp_scalars() {
        // U+1F600 😀 escapes as the UTF-16 pair d83d/de00.
        assert_eq!(
            Json::parse("\"\\ud83d\\ude00\"").expect("parse"),
            Json::Str("😀".into())
        );
        // Mixed with BMP escapes and raw text, and at string edges.
        assert_eq!(
            Json::parse("\"x\\ud83d\\ude00\\u0041y\"").expect("parse"),
            Json::Str("x😀Ay".into())
        );
        // The maximum code point U+10FFFF = dbff/dfff.
        assert_eq!(
            Json::parse("\"\\udbff\\udfff\"").expect("parse"),
            Json::Str("\u{10FFFF}".into())
        );
        // Raw (unescaped) non-BMP text still round-trips through the writer.
        let doc = Json::Str("emoji 😀 and beyond \u{10FFFF}".into());
        assert_eq!(Json::parse(&doc.render()).expect("reparse"), doc);
    }

    #[test]
    fn unpaired_surrogate_escapes_are_rejected() {
        for bad in [
            "\"\\ud83d\"",        // lone high at end of string
            "\"\\ud83dx\"",       // high followed by raw text
            "\"\\ud83d\\n\"",     // high followed by a non-\u escape
            "\"\\ud83d\\ud83d\"", // high followed by another high
            "\"\\ude00\"",        // lone low
            "\"\\ude00\\ud83d\"", // pair in the wrong order
        ] {
            let err = Json::parse(bad).expect_err(bad);
            assert!(err.contains("surrogate"), "{bad}: {err}");
        }
    }

    #[test]
    fn shortest_float_repr_round_trips_exactly() {
        for &x in &[
            0.1,
            1.0 / 3.0,
            f64::MAX,
            f64::MIN_POSITIVE,
            -2.2250738585072014e-308,
            #[allow(clippy::excessive_precision)] // deliberately more digits than f64 keeps
            123456789.123456789,
        ] {
            let text = Json::Num(x).render();
            match Json::parse(&text).expect("parse") {
                Json::Num(y) => assert_eq!(x.to_bits(), y.to_bits(), "{x} → {text}"),
                other => panic!("expected number, got {other:?}"),
            }
        }
    }
}
