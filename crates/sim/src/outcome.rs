//! Execution outcomes reported by the engines.

use serde::{Deserialize, Serialize};

/// Outcome of one 1-to-1 execution (Figure 1, KSY, or combined).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DuelOutcome {
    /// Bob received `m` (the success criterion of Theorem 1).
    pub delivered: bool,
    /// Bob halted without `m` (the ε-probability failure mode).
    pub bob_premature: bool,
    /// Alice's total send/listen cost.
    pub alice_cost: u64,
    /// Bob's total send/listen cost.
    pub bob_cost: u64,
    /// Adversary spend `T` actually incurred (jammed slots).
    pub adversary_cost: u64,
    /// Slots elapsed until both parties halted.
    pub slots: u64,
    /// Slot at which Bob received `m`, if he did.
    pub delivery_slot: Option<u64>,
    /// Last epoch index reached.
    pub last_epoch: u32,
    /// The run hit the slot cap before both parties halted.
    pub truncated: bool,
}

impl DuelOutcome {
    /// `max{C(Alice), C(Bob)}` — the resource-competitiveness measure.
    pub fn max_cost(&self) -> u64 {
        self.alice_cost.max(self.bob_cost)
    }
}

/// Outcome of one 1-to-n execution (Figure 2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BroadcastOutcome {
    /// Number of nodes (including the sender).
    pub n: usize,
    /// Nodes that ever learned `m`.
    pub informed: usize,
    /// Every node learned `m` (the success criterion of Theorem 3).
    pub all_informed: bool,
    /// Every node terminated.
    pub all_terminated: bool,
    /// Nodes that terminated through the case-1 safety valve.
    pub safety_terminations: usize,
    /// Per-node total costs (sends + listens), indexed by node id.
    pub node_costs: Vec<u64>,
    /// Adversary spend `T` (jammed slots).
    pub adversary_cost: u64,
    /// Slots elapsed until the last node terminated (latency).
    pub slots: u64,
    /// Last epoch index any node reached.
    pub last_epoch: u32,
    /// The run hit the epoch cap before all nodes terminated.
    pub truncated: bool,
}

impl BroadcastOutcome {
    /// `max_u C(u)` — the per-node cost bound of Theorem 3.
    pub fn max_cost(&self) -> u64 {
        self.node_costs.iter().copied().max().unwrap_or(0)
    }

    /// Mean per-node cost (the *fair*-algorithm measure of Theorem 4).
    pub fn mean_cost(&self) -> f64 {
        if self.node_costs.is_empty() {
            return 0.0;
        }
        self.node_costs.iter().map(|&c| c as f64).sum::<f64>() / self.node_costs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duel_max_cost() {
        let o = DuelOutcome {
            delivered: true,
            bob_premature: false,
            alice_cost: 10,
            bob_cost: 25,
            adversary_cost: 0,
            slots: 100,
            delivery_slot: Some(40),
            last_epoch: 5,
            truncated: false,
        };
        assert_eq!(o.max_cost(), 25);
    }

    #[test]
    fn broadcast_cost_summaries() {
        let o = BroadcastOutcome {
            n: 4,
            informed: 4,
            all_informed: true,
            all_terminated: true,
            safety_terminations: 0,
            node_costs: vec![4, 8, 6, 2],
            adversary_cost: 0,
            slots: 1000,
            last_epoch: 7,
            truncated: false,
        };
        assert_eq!(o.max_cost(), 8);
        assert!((o.mean_cost() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn empty_costs_are_zero() {
        let o = BroadcastOutcome {
            n: 0,
            informed: 0,
            all_informed: true,
            all_terminated: true,
            safety_terminations: 0,
            node_costs: vec![],
            adversary_cost: 0,
            slots: 0,
            last_epoch: 0,
            truncated: false,
        };
        assert_eq!(o.max_cost(), 0);
        assert_eq!(o.mean_cost(), 0.0);
    }
}
