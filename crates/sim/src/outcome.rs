//! Execution outcomes reported by the engines.

use serde::{Deserialize, Serialize};

/// Outcome of one 1-to-1 execution (Figure 1, KSY, or combined).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DuelOutcome {
    /// Bob received `m` (the success criterion of Theorem 1).
    pub delivered: bool,
    /// Bob halted without `m` (the ε-probability failure mode).
    pub bob_premature: bool,
    /// Alice's total send/listen cost.
    pub alice_cost: u64,
    /// Bob's total send/listen cost.
    pub bob_cost: u64,
    /// Adversary spend `T` actually incurred (jammed slots).
    pub adversary_cost: u64,
    /// Slots elapsed until both parties halted.
    pub slots: u64,
    /// Slot at which Bob received `m`, if he did.
    pub delivery_slot: Option<u64>,
    /// Last epoch index reached.
    pub last_epoch: u32,
    /// The run hit the slot cap before both parties halted.
    pub truncated: bool,
}

impl DuelOutcome {
    /// `max{C(Alice), C(Bob)}` — the resource-competitiveness measure.
    pub fn max_cost(&self) -> u64 {
        self.alice_cost.max(self.bob_cost)
    }
}

/// Outcome of one 1-to-n execution (Figure 2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BroadcastOutcome {
    /// Number of nodes (including the sender).
    pub n: usize,
    /// Nodes that ever learned `m`.
    pub informed: usize,
    /// Every node learned `m` (the success criterion of Theorem 3).
    pub all_informed: bool,
    /// Every node terminated.
    pub all_terminated: bool,
    /// Nodes that terminated through the case-1 safety valve.
    pub safety_terminations: usize,
    /// Per-node total costs (sends + listens), indexed by node id.
    pub node_costs: Vec<u64>,
    /// Adversary spend `T` (jammed slots).
    pub adversary_cost: u64,
    /// Slots elapsed until the last node terminated (latency).
    pub slots: u64,
    /// Last epoch index any node reached.
    pub last_epoch: u32,
    /// The run hit the epoch cap before all nodes terminated.
    pub truncated: bool,
}

impl BroadcastOutcome {
    /// `max_u C(u)` — the per-node cost bound of Theorem 3.
    pub fn max_cost(&self) -> u64 {
        self.node_costs.iter().copied().max().unwrap_or(0)
    }

    /// Mean per-node cost (the *fair*-algorithm measure of Theorem 4).
    pub fn mean_cost(&self) -> f64 {
        if self.node_costs.is_empty() {
            return 0.0;
        }
        self.node_costs.iter().map(|&c| c as f64).sum::<f64>() / self.node_costs.len() as f64
    }
}

/// Outcome of one queue-driven streaming execution: a sequence of
/// broadcast messages drained FIFO through one re-armed session while a
/// single adversary budget spans the stream.
///
/// Latency is measured per message from its arrival slot to the slot its
/// broadcast completes (waiting time in queue + service time); the stream
/// clock never runs backwards, so `slots` is the makespan. All quantities
/// are exact integers so checksums stay platform-independent.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamOutcome {
    /// Number of nodes (including the sender).
    pub n: usize,
    /// Messages that arrived within the horizon.
    pub arrivals: u64,
    /// Messages whose broadcast completed with every node informed.
    pub delivered: u64,
    /// Messages cut off by an engine cap (epoch/slot budget) mid-service.
    pub truncated_msgs: u64,
    /// Makespan: the slot at which the last message's service completed
    /// (at least the last arrival slot).
    pub slots: u64,
    /// Total adversary spend across the whole stream.
    pub adversary_cost: u64,
    /// Max per-node cost over any single message's execution.
    pub max_cost: u64,
    /// Time-integral of queue length: the sum of per-message sojourn
    /// times (Little's law numerator). `queue_area / slots` is the mean
    /// queue length; `queue_area / arrivals` the mean latency.
    pub queue_area: u64,
    /// Max number of messages simultaneously waiting or in service.
    pub max_queue: u64,
    /// Median per-message latency (slots, nearest-rank over completions).
    pub latency_p50: u64,
    /// 95th-percentile per-message latency.
    pub latency_p95: u64,
    /// Worst per-message latency.
    pub latency_max: u64,
    /// The stream was cut off (deadline) before every arrival was served.
    pub truncated: bool,
}

impl StreamOutcome {
    /// Delivered messages per slot (0 on an empty stream).
    pub fn throughput(&self) -> f64 {
        if self.slots == 0 {
            return 0.0;
        }
        self.delivered as f64 / self.slots as f64
    }

    /// Mean per-message latency in slots (0 on an empty stream).
    pub fn mean_latency(&self) -> f64 {
        if self.arrivals == 0 {
            return 0.0;
        }
        self.queue_area as f64 / self.arrivals as f64
    }

    /// Mean queue length over the makespan (Little's law).
    pub fn mean_queue(&self) -> f64 {
        if self.slots == 0 {
            return 0.0;
        }
        self.queue_area as f64 / self.slots as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duel_max_cost() {
        let o = DuelOutcome {
            delivered: true,
            bob_premature: false,
            alice_cost: 10,
            bob_cost: 25,
            adversary_cost: 0,
            slots: 100,
            delivery_slot: Some(40),
            last_epoch: 5,
            truncated: false,
        };
        assert_eq!(o.max_cost(), 25);
    }

    #[test]
    fn broadcast_cost_summaries() {
        let o = BroadcastOutcome {
            n: 4,
            informed: 4,
            all_informed: true,
            all_terminated: true,
            safety_terminations: 0,
            node_costs: vec![4, 8, 6, 2],
            adversary_cost: 0,
            slots: 1000,
            last_epoch: 7,
            truncated: false,
        };
        assert_eq!(o.max_cost(), 8);
        assert!((o.mean_cost() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn stream_derived_rates() {
        let o = StreamOutcome {
            n: 8,
            arrivals: 4,
            delivered: 4,
            truncated_msgs: 0,
            slots: 1000,
            adversary_cost: 10,
            max_cost: 7,
            queue_area: 500,
            max_queue: 2,
            latency_p50: 100,
            latency_p95: 250,
            latency_max: 250,
            truncated: false,
        };
        assert!((o.throughput() - 0.004).abs() < 1e-12);
        assert!((o.mean_latency() - 125.0).abs() < 1e-12);
        assert!((o.mean_queue() - 0.5).abs() < 1e-12);
        let empty = StreamOutcome {
            arrivals: 0,
            slots: 0,
            ..o
        };
        assert_eq!(empty.throughput(), 0.0);
        assert_eq!(empty.mean_latency(), 0.0);
        assert_eq!(empty.mean_queue(), 0.0);
    }

    #[test]
    fn empty_costs_are_zero() {
        let o = BroadcastOutcome {
            n: 0,
            informed: 0,
            all_informed: true,
            all_terminated: true,
            safety_terminations: 0,
            node_costs: vec![],
            adversary_cost: 0,
            slots: 0,
            last_epoch: 0,
            truncated: false,
        };
        assert_eq!(o.max_cost(), 0);
        assert_eq!(o.mean_cost(), 0.0);
    }
}
