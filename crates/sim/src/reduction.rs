//! The Theorem 4 reduction, implemented literally.
//!
//! The proof turns any *fair* 1-to-n algorithm `A` into a two-player
//! algorithm `A′`: Alice simulates the sender and **Bob simulates all n
//! receivers at once**. Because one radio cannot send and listen in the
//! same slot, each slot of `A` becomes a *pair* of slots in `A′`: Bob
//! transmits in the first and listens in the second, while Alice duplicates
//! the sender's action across the pair. Then `E(A′_alice) ≤ 2·g(T)` and
//! `E(A′_bob) ≤ n·g(T)` where `g(T)` is the fair per-node cost — and
//! Theorem 2's product bound `E(A)·E(B) = Ω(T)` forces `g(T) = Ω(√(T/n))`.
//!
//! [`simulate_reduction`] executes `A′` concretely: it runs the 1-to-n fast
//! engine, splits the measured costs into the Alice/Bob sides of `A′`
//! (sender's cost doubled by the slot pairing; receivers' costs pooled into
//! Bob), and reports the product `E(A′_alice)·E(A′_bob)` normalized by `T`.
//! Experiment E7 uses it to show the product bound holds *through the
//! reduction*, which is the step that makes Theorem 4 a corollary of
//! Theorem 2.

use rcb_adversary::rep_strategies::BudgetedRepBlocker;
use rcb_core::one_to_n::OneToNParams;
use rcb_mathkit::rng::RcbRng;
use rcb_mathkit::stats::RunningStats;
use serde::{Deserialize, Serialize};

use crate::fast::{run_broadcast, FastConfig};
use crate::runner::{run_trials, Parallelism};

/// Aggregated outcome of running the reduction over many trials.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ReductionOutcome {
    pub n: usize,
    /// Mean realized adversary spend in the simulated `A` executions.
    pub mean_t: f64,
    /// `E(A′_alice)`: twice the sender's mean cost (slot pairing).
    pub alice_cost: f64,
    /// `E(A′_bob)`: the pooled mean cost of the n−1 receivers, doubled for
    /// the slot pairing on the receiver side as well (Bob both transmits
    /// and listens per simulated slot pair).
    pub bob_cost: f64,
    /// `E(A′_alice)·E(A′_bob) / (2T)` — the `A′` execution runs on doubled
    /// slots, so its effective adversary budget is `2T`; Theorem 2 lower-
    /// bounds this ratio by a constant.
    pub product_over_t: f64,
    /// The fair per-node cost `g(T)` of the underlying 1-to-n algorithm.
    pub fair_cost: f64,
    /// `g(T) / √(T/n)` — Theorem 4 lower-bounds this by a constant.
    pub fairness_ratio: f64,
    pub trials: u64,
}

/// Runs the Theorem 4 reduction: `trials` executions of Figure 2 with `n`
/// nodes against a blanket blocker of the given budget, re-accounted as
/// the two-player protocol `A′` of the proof.
pub fn simulate_reduction(
    params: &OneToNParams,
    n: usize,
    budget: u64,
    trials: u64,
    seed: u64,
) -> ReductionOutcome {
    assert!(
        n >= 2,
        "the reduction needs a sender and at least one receiver"
    );
    let outcomes = run_trials(trials, seed, Parallelism::Auto, |_, rng: &mut RcbRng| {
        let mut adv = BudgetedRepBlocker::new(budget, 1.0);
        run_broadcast(params, n, &mut adv, rng, FastConfig::default())
    });

    let mut sender = RunningStats::new();
    let mut receivers = RunningStats::new();
    let mut fair = RunningStats::new();
    let mut t = RunningStats::new();
    for o in &outcomes {
        // Node 0 is the sender — Alice's side of A′ (doubled: she repeats
        // each action across the slot pair).
        sender.push(2.0 * o.node_costs[0] as f64);
        // Receivers pool into Bob (doubled for his transmit+listen pair).
        let pooled: u64 = o.node_costs[1..].iter().sum();
        receivers.push(2.0 * pooled as f64);
        fair.push(o.mean_cost());
        t.push(o.adversary_cost as f64);
    }
    let mean_t = t.mean().max(1.0);
    ReductionOutcome {
        n,
        mean_t,
        alice_cost: sender.mean(),
        bob_cost: receivers.mean(),
        product_over_t: sender.mean() * receivers.mean() / (2.0 * mean_t),
        fair_cost: fair.mean(),
        fairness_ratio: fair.mean() / (mean_t / n as f64).sqrt(),
        trials,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduction_product_clears_the_theorem2_floor() {
        // Theorem 2: E(A′_alice)·E(A′_bob) = Ω(T). Our (upper-bound-side)
        // algorithm should clear the constant floor comfortably.
        let params = OneToNParams::practical();
        let out = simulate_reduction(&params, 16, 1 << 19, 6, 77);
        assert!(out.mean_t > 1000.0, "the blocker must actually spend");
        assert!(
            out.product_over_t > 1.0,
            "product/T = {} should clear the Theorem 2 floor",
            out.product_over_t
        );
    }

    #[test]
    fn fairness_ratio_is_bounded_below() {
        // Theorem 4: g(T) ≥ c·√(T/n). Any working implementation sits well
        // above c = 1 at practical scales (the polylog upper-bound factors
        // push it up, never down).
        let params = OneToNParams::practical();
        let out = simulate_reduction(&params, 8, 1 << 19, 6, 78);
        assert!(
            out.fairness_ratio > 1.0,
            "fair cost / √(T/n) = {}",
            out.fairness_ratio
        );
    }

    #[test]
    fn bob_carries_the_receivers_and_alice_the_sender() {
        let params = OneToNParams::practical();
        let out = simulate_reduction(&params, 16, 1 << 18, 5, 79);
        // Fifteen pooled receivers outweigh one sender.
        assert!(out.bob_cost > out.alice_cost);
        // And the pooling is bounded by n·g(T) (both sides doubled).
        assert!(out.bob_cost <= 2.0 * out.n as f64 * out.fair_cost * 1.25 + 1.0);
    }

    #[test]
    #[should_panic]
    fn reduction_needs_two_nodes() {
        let params = OneToNParams::practical();
        simulate_reduction(&params, 1, 1024, 2, 80);
    }
}
