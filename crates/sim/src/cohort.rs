//! Population-compressed 1-to-n engine: cohorts instead of nodes.
//!
//! [`fast`](crate::fast) samples every node's send/listen events per
//! repetition — `O(n)` work per repetition even when almost all nodes are
//! in *identical* protocol states. This engine exploits that symmetry: the
//! population is a set of **cohorts**, each a `(representative node state,
//! member count)` record, and a repetition is resolved with work
//! proportional to the number of *distinct states*, not the number of
//! nodes:
//!
//! 1. **Channel composition.** Per-slot content is i.i.d. across a
//!    repetition's slots (every node's send coins are), so the counts of
//!    clear / single-message / other slots in each jam/skew region follow a
//!    multinomial over closed-form probabilities (`P(clear) = Π(1−p_c)^m_c`
//!    etc.) — drawn with `O(cohorts)` binomial splits
//!    ([`rcb_mathkit::sample::multinomial_into`]), never by iterating
//!    slots.
//! 2. **Cohort dynamics.** Members of a cohort hear i.i.d.
//!    `Binomial(clear slots, listen_prob)` clear counts, so the cohort
//!    splits into sub-cohorts by drawn clear value (a multinomial over the
//!    binomial's support, walked with the pmf recurrence), then by message
//!    outcome (heard `m` / promoted to helper). Each sub-cohort's state
//!    transition is delegated to the *real*
//!    [`OneToNNode::end_repetition`] on a representative copy — the cohort
//!    engine contains no duplicate of the protocol state machine.
//! 3. **Lazy materialization.** Nodes whose symmetry is broken from the
//!    outside — the designated sources (own-transmission exclusion) and
//!    fault targets (crash, skew) — are *tracked singletons*: cohorts of
//!    count 1 with exact per-node draws. Everyone else stays anonymous
//!    until a drawn outcome differs, at which point the cohort splits;
//!    sub-cohorts whose states re-converge (epoch reset) re-merge.
//!
//! Below [`CohortConfig::exact_member_threshold`] members (and always under
//! a battery fault, whose per-node energy gauge breaks every symmetry) the
//! engine tracks *every* node as a singleton: per-node dynamics are then
//! exact, which is the regime the conformance differ gates at n ≤ 256.
//!
//! ## Documented approximations (relative to [`fast`](crate::fast))
//!
//! All engines agree only *in distribution* — but this engine's per-node
//! marginals carry three deliberate deviations, each negligible at the
//! scales where it is active and absent in all-singleton mode where noted:
//!
//! * **Hearing decoupling.** Two listeners of the same slot hear the same
//!   thing in `fast`; here each node's heard counts are drawn
//!   independently given the composition. Per-node marginals are exact;
//!   only cross-node correlations differ.
//! * **Own-singleton exclusion for anonymous cohorts.** An anonymous
//!   informed node's heard-message draw does not exclude the handful of
//!   singleton slots it produced itself (tracked singletons do). Helper
//!   promotion needs `msgs > helper_frac·d·i` — reached only when message
//!   singles vastly outnumber any one node's own — so the promotion bias
//!   is far below statistical resolution.
//! * **Cost pooling.** Anonymous cohorts draw send/listen *totals*
//!   (`Binomial(count·slots, p)`), exact for sums — so `mean_cost` is
//!   exact — and smear them evenly across members on output, so per-node
//!   cost spread (`max_cost`) is compressed at large n. All-singleton mode
//!   draws per-node costs individually and has no smearing.

use std::collections::HashMap;

use rcb_adversary::traits::{JamPlan, RepetitionAdversary, RepetitionContext, RepetitionSummary};
use rcb_core::one_to_n::node::{OneToNNode, Status, TermReason};
use rcb_core::one_to_n::params::OneToNParams;
use rcb_mathkit::binom::{binomial_tail_gt, ln_binomial_pmf};
use rcb_mathkit::rng::RcbRng;
use rcb_mathkit::sample::{binomial_fast, multinomial_into};
use serde::{Deserialize, Serialize};

use crate::deadline::Deadline;
use crate::error::SimError;
use crate::faults::FaultPlan;
use crate::outcome::BroadcastOutcome;

/// Limits and mode selection for the cohort engine.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CohortConfig {
    /// Hard cap on the epoch index; runs reaching it are truncated. Same
    /// semantics as [`FastConfig::max_epoch`](crate::fast::FastConfig).
    pub max_epoch: u32,
    /// Populations up to this size are simulated with every node as a
    /// tracked singleton (exact per-node dynamics); larger populations use
    /// anonymous cohorts. The default keeps every conformance grid size
    /// (n ≤ 256) in exact mode with headroom.
    pub exact_member_threshold: usize,
}

impl Default for CohortConfig {
    fn default() -> Self {
        Self {
            max_epoch: 40,
            exact_member_threshold: 384,
        }
    }
}

/// Compression diagnostics from an instrumented run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CohortStats {
    /// Peak number of simultaneously live anonymous cohorts.
    pub max_live_cohorts: usize,
    /// Repetitions in which at least one cohort split into multiple
    /// distinct successor states.
    pub split_repetitions: u64,
    /// First period (repetition index) at which any cohort split — the
    /// lazy-materialization boundary.
    pub first_split_period: Option<u64>,
    /// Number of tracked singleton nodes.
    pub tracked_nodes: usize,
}

/// An anonymous cohort: `count` nodes all in exactly the state of `node`.
#[derive(Debug, Clone, Copy)]
struct Cohort {
    node: OneToNNode,
    count: u64,
    /// Total send+listen cost accrued by the cohort's members, pooled.
    cost_pool: u64,
}

/// A node simulated individually (sources, fault targets, or — below the
/// exact-member threshold — everyone).
#[derive(Debug, Clone, Copy)]
struct Tracked {
    id: usize,
    node: OneToNNode,
    cost: u64,
    dead: bool,
    offline: bool,
}

/// Merge key for anonymous cohorts. Live cohorts merge on (status, epoch,
/// quantized log₂ S_u, n-estimate, informed history); terminated cohorts
/// are inert, so they merge on (reason, informed history) alone.
///
/// The quantization lattice (1/64 of a doubling) re-merges cohorts whose
/// rate variables drifted apart by less than the protocol can resolve in
/// one repetition; in all-singleton mode no anonymous cohorts exist, so
/// quantization never touches the conformance-gated scales.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum CohortKey {
    Live {
        status: Status,
        epoch: u32,
        qls: i64,
        n_est_bits: u64,
        ever_informed: bool,
    },
    Terminated {
        reason: Option<TermReason>,
        ever_informed: bool,
    },
}

const QLS_PER_DOUBLING: f64 = 64.0;

fn cohort_key(node: &OneToNNode) -> CohortKey {
    if node.is_terminated() {
        CohortKey::Terminated {
            reason: node.term_reason(),
            ever_informed: node.ever_informed(),
        }
    } else {
        CohortKey::Live {
            status: node.status(),
            epoch: node.epoch(),
            qls: (node.s().log2() * QLS_PER_DOUBLING).round() as i64,
            n_est_bits: node.n_estimate().map_or(0, f64::to_bits),
            ever_informed: node.ever_informed(),
        }
    }
}

/// Runs one 1-to-n execution on the cohort engine: node 0 is the sender.
///
/// ```
/// use rcb_sim::cohort::{run_cohort, CohortConfig};
/// use rcb_adversary::rep_strategies::NoJamRep;
/// use rcb_core::one_to_n::OneToNParams;
/// use rcb_mathkit::rng::RcbRng;
///
/// let params = OneToNParams::practical();
/// let mut rng = RcbRng::new(7);
/// let out = run_cohort(&params, 16, &mut NoJamRep, &mut rng, CohortConfig::default());
/// assert!(out.all_informed && out.all_terminated);
/// ```
pub fn run_cohort(
    params: &OneToNParams,
    n: usize,
    adversary: &mut dyn RepetitionAdversary,
    rng: &mut RcbRng,
    config: CohortConfig,
) -> BroadcastOutcome {
    run_cohort_from(params, n, &[0], adversary, rng, config)
}

/// Multi-source variant: every node in `sources` starts informed.
pub fn run_cohort_from(
    params: &OneToNParams,
    n: usize,
    sources: &[usize],
    adversary: &mut dyn RepetitionAdversary,
    rng: &mut RcbRng,
    config: CohortConfig,
) -> BroadcastOutcome {
    run_cohort_core(
        params,
        n,
        sources,
        adversary,
        rng,
        config,
        &FaultPlan::none(),
        &Deadline::NONE,
        &mut CohortStats::default(),
    )
    .0
}

/// [`run_cohort_from`] with a fault-injection plan. Fault semantics match
/// the other engines; every fault target is a tracked singleton, and a
/// battery fault forces all-singleton mode (the energy gauge is per-node
/// state that anonymous cohorts cannot carry).
pub fn run_cohort_faulted(
    params: &OneToNParams,
    n: usize,
    sources: &[usize],
    adversary: &mut dyn RepetitionAdversary,
    rng: &mut RcbRng,
    config: CohortConfig,
    faults: &FaultPlan,
) -> BroadcastOutcome {
    run_cohort_core(
        params,
        n,
        sources,
        adversary,
        rng,
        config,
        faults,
        &Deadline::NONE,
        &mut CohortStats::default(),
    )
    .0
}

/// [`run_cohort_faulted`] reporting budget exhaustion as a typed error.
pub fn run_cohort_checked(
    params: &OneToNParams,
    n: usize,
    sources: &[usize],
    adversary: &mut dyn RepetitionAdversary,
    rng: &mut RcbRng,
    config: CohortConfig,
    faults: &FaultPlan,
) -> Result<BroadcastOutcome, SimError> {
    match run_cohort_core(
        params,
        n,
        sources,
        adversary,
        rng,
        config,
        faults,
        &Deadline::NONE,
        &mut CohortStats::default(),
    ) {
        (outcome, None) => Ok(outcome),
        (_, Some(err)) => Err(err),
    }
}

/// [`run_cohort_from`] that also reports compression diagnostics — how
/// many cohorts existed, when the first symmetry break split one.
pub fn run_cohort_instrumented(
    params: &OneToNParams,
    n: usize,
    sources: &[usize],
    adversary: &mut dyn RepetitionAdversary,
    rng: &mut RcbRng,
    config: CohortConfig,
) -> (BroadcastOutcome, CohortStats) {
    let mut stats = CohortStats::default();
    let (out, _) = run_cohort_core(
        params,
        n,
        sources,
        adversary,
        rng,
        config,
        &FaultPlan::none(),
        &Deadline::NONE,
        &mut stats,
    );
    (out, stats)
}

/// Channel-composition slot categories, drawn per region each repetition.
/// Layout: `[clear, anonymous message singles, tracked-sender singles...,
/// everything else]`.
const CAT_CLEAR: usize = 0;
const CAT_MSG_ANON: usize = 1;
const CAT_TRACKED_BASE: usize = 2;

/// Retained per-session state of the cohort engine: the materialized
/// (tracked) singletons, the anonymous cohort list, and every reusable
/// sampling buffer. One `CohortState` serves a whole [`CohortSession`];
/// the legacy entry points build a fresh one per run, so both paths
/// execute the identical repetition loop.
#[derive(Debug)]
struct CohortState {
    tracked: Vec<Tracked>,
    cohorts: Vec<Cohort>,
    weights: Vec<f64>,
    region_counts: Vec<Vec<u64>>,
    scratch_counts: Vec<u64>,
    clear_groups: Vec<(u64, u64)>,
    next_cohorts: Vec<Cohort>,
    merge_index: HashMap<CohortKey, usize>,
}

impl CohortState {
    fn new(
        params: &OneToNParams,
        n: usize,
        sources: &[usize],
        config: CohortConfig,
        faults: &FaultPlan,
    ) -> Self {
        assert!(n >= 1, "need at least one node");
        assert!(!sources.is_empty(), "need at least one source");
        assert!(sources.iter().all(|&s| s < n), "source ids must be < n");
        debug_assert!(faults.validate().is_ok(), "invalid fault plan");

        // Mode selection: everyone tracked below the threshold or under a
        // battery fault; otherwise only the symmetry-broken nodes (sources,
        // crash/skew targets).
        let all_tracked = n <= config.exact_member_threshold || faults.battery_capacity().is_some();
        let mut tracked_ids: Vec<usize> = if all_tracked {
            (0..n).collect()
        } else {
            let mut ids: Vec<usize> = sources.to_vec();
            if let Some(c) = faults.crash {
                if c.node < n {
                    ids.push(c.node);
                }
            }
            if let Some(s) = faults.skew {
                if s.node < n {
                    ids.push(s.node);
                }
            }
            ids.sort_unstable();
            ids.dedup();
            ids
        };
        tracked_ids.sort_unstable();
        let tracked: Vec<Tracked> = tracked_ids
            .iter()
            .map(|&id| Tracked {
                id,
                node: OneToNNode::new(params, sources.contains(&id)),
                cost: 0,
                dead: false,
                offline: false,
            })
            .collect();

        let anon_initial = (n - tracked.len()) as u64;
        let mut cohorts: Vec<Cohort> = Vec::new();
        if anon_initial > 0 {
            // Anonymous nodes are never sources (sources are tracked).
            cohorts.push(Cohort {
                node: OneToNNode::new(params, false),
                count: anon_initial,
                cost_pool: 0,
            });
        }

        Self {
            tracked,
            cohorts,
            weights: Vec::new(),
            region_counts: vec![Vec::new(); 4],
            scratch_counts: Vec::new(),
            clear_groups: Vec::new(),
            next_cohorts: Vec::new(),
            merge_index: HashMap::new(),
        }
    }

    /// Collapses the population back to its initial shape in place: every
    /// tracked singleton re-armed to its constructed state, and all
    /// materialized anonymous cohorts folded into the single uninformed
    /// cohort again. The tracked id set is a deterministic function of the
    /// session's fixed (n, sources, faults, config), so it never changes
    /// across re-arms.
    fn rearm(&mut self, params: &OneToNParams, n: usize, sources: &[usize]) {
        for t in self.tracked.iter_mut() {
            t.node.rearm(params, sources.contains(&t.id));
            t.cost = 0;
            t.dead = false;
            t.offline = false;
        }
        self.cohorts.clear();
        let anon_initial = (n - self.tracked.len()) as u64;
        if anon_initial > 0 {
            self.cohorts.push(Cohort {
                node: OneToNNode::new(params, false),
                count: anon_initial,
                cost_pool: 0,
            });
        }
        self.next_cohorts.clear();
        self.merge_index.clear();
    }
}

/// A re-armable cohort-engine session: the cohort list, tracked-singleton
/// vector, and sampling buffers persist across runs.
/// [`rearm`](Self::rearm) collapses whatever population structure the
/// previous run materialized back into the initial cohorts; the golden
/// equivalence suite pins that a re-armed run is bit-identical to a fresh
/// [`run_cohort_from`] at the same seed.
#[derive(Debug)]
pub struct CohortSession {
    params: OneToNParams,
    n: usize,
    sources: Vec<usize>,
    config: CohortConfig,
    faults: FaultPlan,
    state: CohortState,
    rng: RcbRng,
}

impl CohortSession {
    pub fn new(
        params: OneToNParams,
        n: usize,
        sources: Vec<usize>,
        config: CohortConfig,
        faults: FaultPlan,
        seed: u64,
    ) -> Self {
        assert!(faults.validate().is_ok(), "invalid fault plan");
        let state = CohortState::new(&params, n, &sources, config, &faults);
        Self {
            params,
            n,
            sources,
            config,
            faults,
            state,
            rng: RcbRng::new(seed),
        }
    }

    /// Re-arms the session to slot 0 on a fresh RNG stream, collapsing
    /// materialized nodes back into cohorts without reallocating.
    pub fn rearm(&mut self, seed: u64) {
        self.state.rearm(&self.params, self.n, &self.sources);
        self.rng = RcbRng::new(seed);
    }

    /// Runs one execution against `adversary` on the session's RNG. The
    /// session must be armed (just constructed, or [`rearm`](Self::rearm)
    /// since the previous run).
    pub fn run(
        &mut self,
        adversary: &mut dyn RepetitionAdversary,
        deadline: &Deadline,
    ) -> (BroadcastOutcome, Option<SimError>) {
        run_cohort_in(
            &mut self.state,
            &self.params,
            self.n,
            adversary,
            &mut self.rng,
            self.config,
            &self.faults,
            deadline,
            &mut CohortStats::default(),
        )
    }
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn run_cohort_core(
    params: &OneToNParams,
    n: usize,
    sources: &[usize],
    adversary: &mut dyn RepetitionAdversary,
    rng: &mut RcbRng,
    config: CohortConfig,
    faults: &FaultPlan,
    deadline: &Deadline,
    stats: &mut CohortStats,
) -> (BroadcastOutcome, Option<SimError>) {
    let mut state = CohortState::new(params, n, sources, config, faults);
    run_cohort_in(
        &mut state, params, n, adversary, rng, config, faults, deadline, stats,
    )
}

#[allow(clippy::too_many_arguments)]
fn run_cohort_in(
    state: &mut CohortState,
    params: &OneToNParams,
    n: usize,
    adversary: &mut dyn RepetitionAdversary,
    rng: &mut RcbRng,
    config: CohortConfig,
    faults: &FaultPlan,
    deadline: &Deadline,
    stats: &mut CohortStats,
) -> (BroadcastOutcome, Option<SimError>) {
    let CohortState {
        tracked,
        cohorts,
        weights,
        region_counts,
        scratch_counts,
        clear_groups,
        next_cohorts,
        merge_index,
    } = state;
    stats.tracked_nodes = tracked.len();

    let loss_p = faults.loss_p();
    let mut pending_reboot = faults.reboot_at();
    let has_faults = !faults.is_none();

    let mut adversary_cost = 0u64;
    let mut slots_total = 0u64;
    let mut period = 0u64;
    let mut truncated = true;
    let bounded = !deadline.is_unbounded();
    let mut deadline_hit = false;

    let mut epoch = params.first_epoch;
    'epochs: while epoch <= config.max_epoch {
        let len = params.slots(epoch);
        let reps = params.reps(epoch);
        for _ in 0..reps {
            if bounded && deadline.exceeded() {
                deadline_hit = true;
                break 'epochs;
            }
            if has_faults {
                if let Some(cap) = faults.battery_capacity() {
                    for t in tracked.iter_mut() {
                        t.dead = t.dead || t.cost >= cap;
                    }
                }
                if let Some((node, at)) = pending_reboot {
                    if period >= at {
                        if let Some(t) = tracked.iter_mut().find(|t| t.id == node) {
                            t.node.reboot(params);
                        }
                        pending_reboot = None;
                    }
                }
                for t in tracked.iter_mut() {
                    t.offline = t.dead || faults.crashed(t.id, period);
                }
            }
            let all_halted = tracked.iter().all(|t| t.node.is_terminated() || t.dead)
                && cohorts.iter().all(|c| c.node.is_terminated());
            if all_halted {
                truncated = false;
                break 'epochs;
            }
            let active_tracked = tracked
                .iter()
                .filter(|t| !t.node.is_terminated() && !t.offline)
                .count() as u64;
            let active_anon: u64 = cohorts
                .iter()
                .filter(|c| !c.node.is_terminated())
                .map(|c| c.count)
                .sum();
            let ctx = RepetitionContext {
                epoch,
                repetition: period,
                slots: len,
                active_nodes: (active_tracked + active_anon) as usize,
            };
            let plan = adversary.plan(&ctx);
            let jam_total = plan.jam_count(len);
            adversary_cost += jam_total;

            // --- Region decomposition -------------------------------------
            // Slot contents are i.i.d., so region compositions are
            // independent multinomials over the same category
            // probabilities; only the region *lengths* differ. Regions:
            // (skew prefix vs rest) × (jammed vs clear air). The prefix
            // axis exists only while a skewed node is live.
            let skew_prefix = faults
                .skew
                .filter(|s| {
                    s.node < n
                        && tracked
                            .iter()
                            .any(|t| t.id == s.node && !t.node.is_terminated())
                })
                .map_or(0, |s| s.slots.min(len));
            let jam_in_prefix = jammed_in_prefix(&plan, skew_prefix, len);
            // Region order: [rest∩unjam, prefix∩unjam, rest∩jam, prefix∩jam].
            let region_lens = [
                len - skew_prefix - (jam_total - jam_in_prefix),
                skew_prefix - jam_in_prefix,
                jam_total - jam_in_prefix,
                jam_in_prefix,
            ];

            // --- Composition probabilities --------------------------------
            // ln P(clear) = Σ m_c·ln(1−p_c); a slot is a singleton of group
            // g with probability P(clear)·Σ_{u∈g} p_u/(1−p_u). Saturated
            // senders (p = 1, transient in the earliest epochs) make clear
            // slots impossible and collide with any other sender.
            let mut ln_rest = 0.0f64;
            let mut saturated = 0u64;
            let mut anon_msg_ratio = 0.0f64; // Σ m·p/(1−p) over msg senders
            let mut sat_category: Option<usize> = None; // category of a lone saturated sender
            for t in tracked.iter() {
                if t.node.is_terminated() || t.offline {
                    continue;
                }
                let p = t.node.send_prob(params);
                if p >= 1.0 {
                    saturated += 1;
                } else {
                    ln_rest += (-p).ln_1p();
                }
            }
            for c in cohorts.iter() {
                if c.node.is_terminated() {
                    continue;
                }
                let p = c.node.send_prob(params);
                if p >= 1.0 {
                    saturated += c.count;
                } else {
                    ln_rest += c.count as f64 * (-p).ln_1p();
                    if sends_message(&c.node) {
                        anon_msg_ratio += c.count as f64 * p / (1.0 - p);
                    }
                }
            }
            // A lone saturated *anonymous* sender can still produce
            // singletons; find which category it belongs to.
            if saturated == 1 {
                if let Some((idx, c)) = cohorts
                    .iter()
                    .enumerate()
                    .find(|(_, c)| !c.node.is_terminated() && c.node.send_prob(params) >= 1.0)
                {
                    debug_assert_eq!(c.count, 1);
                    let _ = idx;
                    sat_category = Some(if sends_message(&c.node) {
                        CAT_MSG_ANON
                    } else {
                        usize::MAX // noise singleton: lands in "rest"
                    });
                }
            }
            let p0 = if saturated == 0 { ln_rest.exp() } else { 0.0 };

            weights.clear();
            weights.push(p0);
            weights.push(p0 * anon_msg_ratio);
            for t in tracked.iter() {
                let p = if t.node.is_terminated() || t.offline {
                    0.0
                } else {
                    t.node.send_prob(params)
                };
                let w = if saturated == 0 && p < 1.0 {
                    // Remove this sender's own factor from ln P(clear).
                    (ln_rest - (-p).ln_1p()).exp() * p
                } else if saturated == 1 && p >= 1.0 {
                    // The lone saturated sender: singleton wherever nobody
                    // else transmits.
                    ln_rest.exp()
                } else {
                    0.0
                };
                weights.push(w);
            }
            if sat_category == Some(CAT_MSG_ANON) {
                weights[CAT_MSG_ANON] = ln_rest.exp();
            }
            let assigned: f64 = weights.iter().sum();
            weights.push((1.0 - assigned).max(0.0)); // noise + collisions

            for (r, &rlen) in region_lens.iter().enumerate() {
                multinomial_into(rng, rlen, weights, scratch_counts);
                region_counts[r].clear();
                region_counts[r].extend_from_slice(scratch_counts);
            }

            let message_slots: u64 = (0..4)
                .map(|r| {
                    region_counts[r][CAT_MSG_ANON]
                        + tracked
                            .iter()
                            .enumerate()
                            .filter(|(_, t)| sends_message(&t.node))
                            .map(|(i, _)| region_counts[r][CAT_TRACKED_BASE + i])
                            .sum::<u64>()
                })
                .sum();
            let busy_slots: u64 = len - (0..4).map(|r| region_counts[r][CAT_CLEAR]).sum::<u64>();
            // Audible regions for an unskewed listener: the unjammed ones.
            let clear_unjam = region_counts[0][CAT_CLEAR] + region_counts[1][CAT_CLEAR];
            let msg_unjam = |cat: usize| region_counts[0][cat] + region_counts[1][cat];
            let msg_total_unjam: u64 = msg_unjam(CAT_MSG_ANON)
                + tracked
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| sends_message(&t.node))
                    .map(|(i, _)| msg_unjam(CAT_TRACKED_BASE + i))
                    .sum::<u64>();

            let mut total_listens = 0u64;
            let mut total_sends = 0u64;

            // --- Tracked singletons: exact per-node draws -----------------
            for i in 0..tracked.len() {
                let t = &tracked[i];
                if t.node.is_terminated() {
                    continue;
                }
                if t.offline {
                    // Radio off, clock ticks: zero-count epilogue.
                    tracked[i].node.end_repetition(params, 0, 0);
                    continue;
                }
                let p = t.node.send_prob(params);
                let q = t.node.listen_prob(params);
                let sends = binomial_fast(rng, len, p);
                let listens = binomial_fast(rng, len - sends, q);
                // The skewed node cannot decode its prefix: restrict its
                // audible counts to the non-prefix unjammed region.
                let skewed = skew_prefix > 0 && t.id == faults.skew.map_or(usize::MAX, |s| s.node);
                let (n0, msgs_avail) = if skewed {
                    let own = if sends_message(&t.node) {
                        region_counts[0][CAT_TRACKED_BASE + i]
                    } else {
                        0
                    };
                    (
                        region_counts[0][CAT_CLEAR],
                        region_counts[0][CAT_MSG_ANON]
                            + tracked
                                .iter()
                                .enumerate()
                                .filter(|(_, o)| sends_message(&o.node))
                                .map(|(j, _)| region_counts[0][CAT_TRACKED_BASE + j])
                                .sum::<u64>()
                            - own,
                    )
                } else {
                    let own = if sends_message(&t.node) {
                        msg_unjam(CAT_TRACKED_BASE + i)
                    } else {
                        0
                    };
                    (clear_unjam, msg_total_unjam - own)
                };
                let clear = binomial_fast(rng, n0, q);
                let msgs = binomial_fast(rng, msgs_avail, q * (1.0 - loss_p));
                let t = &mut tracked[i];
                t.cost += sends + listens;
                total_sends += sends;
                total_listens += listens;
                t.node.end_repetition(params, clear, msgs);
            }

            // --- Anonymous cohorts: split by drawn outcome ----------------
            if !cohorts.is_empty() {
                next_cohorts.clear();
                merge_index.clear();
                let mut split_this_rep = false;
                for c in cohorts.iter().copied() {
                    if c.node.is_terminated() {
                        push_merged(next_cohorts, merge_index, c);
                        continue;
                    }
                    let p = c.node.send_prob(params);
                    let q = c.node.listen_prob(params);
                    // Pooled costs: exact totals, smeared per member.
                    let sends = binomial_fast(rng, c.count * len, p);
                    let listens = binomial_fast(rng, c.count * len - sends, q);
                    total_sends += sends;
                    total_listens += listens;
                    let pool = c.cost_pool + sends + listens;

                    // Split members by drawn clear count: only values above
                    // ⌊E/2⌋ change S_u, so everything at or below merges
                    // into one zero-growth group.
                    let expected = params.expected_listens(epoch, c.node.s());
                    let t_growth = (expected / 2.0).floor() as u64;
                    split_by_clear(rng, c.count, clear_unjam, q, t_growth, clear_groups);

                    // Message-outcome probabilities, shared by every clear
                    // group (listen coins are independent across slots).
                    let q_eff = (q * (1.0 - loss_p)).clamp(0.0, 1.0);
                    let thr = params.helper_threshold(epoch);
                    let status = c.node.status();
                    let (p_event, msgs_rep) = match status {
                        Status::Uninformed => (p_hear_any(msg_total_unjam, q_eff), 1u64),
                        Status::Informed => {
                            let k = thr.floor().max(0.0) as u64;
                            (binomial_tail_gt(msg_total_unjam, k, q_eff), k + 1)
                        }
                        Status::Helper | Status::Terminated => (0.0, 0),
                    };

                    let mut children = 0usize;
                    let mut remaining_pool = pool;
                    let mut remaining_members = c.count;
                    let groups = std::mem::take(clear_groups);
                    for (gi, &(clear, cnt)) in groups.iter().enumerate() {
                        let hit = if p_event > 0.0 {
                            binomial_fast(rng, cnt, p_event)
                        } else {
                            0
                        };
                        let subs = [(clear, hit, msgs_rep), (clear, cnt - hit, 0)];
                        for &(v, m, msgs) in subs.iter() {
                            if m == 0 {
                                continue;
                            }
                            let mut rep = c.node;
                            rep.end_repetition(params, v, msgs);
                            // Pool shares: proportional, remainder on the
                            // final child so totals are conserved.
                            let last = gi == groups.len() - 1 && m == remaining_members;
                            let share = if last {
                                remaining_pool
                            } else {
                                ((pool as u128 * m as u128) / c.count as u128) as u64
                            };
                            remaining_pool -= share;
                            remaining_members -= m;
                            children += 1;
                            push_merged(
                                next_cohorts,
                                merge_index,
                                Cohort {
                                    node: rep,
                                    count: m,
                                    cost_pool: share,
                                },
                            );
                        }
                    }
                    *clear_groups = groups;
                    debug_assert_eq!(remaining_members, 0);
                    // Conservation: any rounding residue sticks to the last
                    // child; if every child merged away the residue is
                    // already inside next_cohorts.
                    if children > 1 {
                        split_this_rep = true;
                    }
                }
                std::mem::swap(cohorts, next_cohorts);
                if split_this_rep {
                    stats.split_repetitions += 1;
                    if stats.first_split_period.is_none() {
                        stats.first_split_period = Some(period);
                    }
                }
                stats.max_live_cohorts = stats.max_live_cohorts.max(cohorts.len());
            }

            adversary.observe(
                &ctx,
                &RepetitionSummary {
                    message_slots,
                    busy_slots,
                    jammed_slots: jam_total,
                    listen_actions: total_listens,
                    send_actions: total_sends,
                },
            );
            slots_total += len;
            period += 1;
        }
        let everyone_terminated = tracked.iter().all(|t| t.node.is_terminated())
            && cohorts.iter().all(|c| c.node.is_terminated());
        if everyone_terminated {
            truncated = false;
            break;
        }
        epoch += 1;
        if epoch <= config.max_epoch {
            for t in tracked.iter_mut() {
                t.node.begin_epoch(epoch, params);
            }
            // The epoch reset (S_u ← s_init) collapses the state space:
            // re-merge everything that reconverged.
            next_cohorts.clear();
            merge_index.clear();
            for c in cohorts.drain(..) {
                let mut c = c;
                c.node.begin_epoch(epoch, params);
                push_merged(next_cohorts, merge_index, c);
            }
            std::mem::swap(cohorts, next_cohorts);
        }
    }

    // --- Outcome assembly ------------------------------------------------
    let informed = tracked.iter().filter(|t| t.node.ever_informed()).count()
        + cohorts
            .iter()
            .filter(|c| c.node.ever_informed())
            .map(|c| c.count as usize)
            .sum::<usize>();
    let all_terminated = tracked.iter().all(|t| t.node.is_terminated())
        && cohorts.iter().all(|c| c.node.is_terminated());
    let safety = tracked
        .iter()
        .filter(|t| t.node.term_reason() == Some(TermReason::Safety))
        .count()
        + cohorts
            .iter()
            .filter(|c| c.node.term_reason() == Some(TermReason::Safety))
            .map(|c| c.count as usize)
            .sum::<usize>();

    // Per-node costs: tracked nodes exact; anonymous members receive their
    // cohort pool smeared evenly (see module docs), assigned to the unused
    // ids in ascending order for determinism.
    let mut costs = vec![0u64; n];
    let mut is_tracked = vec![false; n];
    for t in tracked.iter() {
        costs[t.id] = t.cost;
        is_tracked[t.id] = true;
    }
    let mut free_ids = (0..n).filter(|&u| !is_tracked[u]);
    for c in cohorts.iter() {
        let base = c.cost_pool / c.count.max(1);
        let extra = (c.cost_pool % c.count.max(1)) as usize;
        for j in 0..c.count as usize {
            let id = free_ids.next().expect("cohort counts sum to n - tracked");
            costs[id] = base + u64::from(j < extra);
        }
    }

    let err = if deadline_hit {
        Some(SimError::DeadlineExceeded { slots: slots_total })
    } else {
        truncated.then_some(SimError::EpochBudgetExhausted {
            max_epoch: config.max_epoch,
            slots: slots_total,
        })
    };
    (
        BroadcastOutcome {
            n,
            informed,
            all_informed: informed == n,
            all_terminated,
            safety_terminations: safety,
            node_costs: costs,
            adversary_cost,
            slots: slots_total,
            last_epoch: epoch.min(config.max_epoch),
            truncated,
        },
        err,
    )
}

/// Whether a node in this state transmits `m` (rather than noise) when it
/// sends.
fn sends_message(node: &OneToNNode) -> bool {
    matches!(node.status(), Status::Informed | Status::Helper)
}

/// `P(at least one of `m` independent q-coins lands heads)`, stable for
/// tiny `q` and huge `m`.
fn p_hear_any(m: u64, q: f64) -> f64 {
    if m == 0 || q.is_nan() || q <= 0.0 {
        return 0.0;
    }
    if q >= 1.0 {
        return 1.0;
    }
    -(m as f64 * (-q).ln_1p()).exp_m1()
}

/// How many jammed slots fall inside `[0, prefix)`.
fn jammed_in_prefix(plan: &JamPlan, prefix: u64, len: u64) -> u64 {
    if prefix == 0 {
        return 0;
    }
    match plan {
        JamPlan::None => 0,
        JamPlan::All => prefix,
        JamPlan::Suffix(k) => {
            let start = len - (*k).min(len);
            prefix.saturating_sub(start)
        }
        JamPlan::Slots(v) => v.iter().filter(|&&t| t < prefix && t < len).count() as u64,
    }
}

/// Distributes `m` i.i.d. `Binomial(n0, q)` clear-count draws into groups:
/// one merged group for every value ≤ `t` (those leave S_u unchanged, so
/// the exact value is irrelevant — representative 0), and one group per
/// drawn value above `t` (each maps to a distinct S_u).
///
/// The above-`t` histogram is walked with the conditional pmf recurrence:
/// `O(distinct occupied values)` binomial splits, which is `O(√(n0·q))`-ish
/// in the clear-channel regime and zero when the channel is noise- or
/// jam-saturated (the common large-n case).
fn split_by_clear(rng: &mut RcbRng, m: u64, n0: u64, q: f64, t: u64, out: &mut Vec<(u64, u64)>) {
    out.clear();
    if m == 0 {
        return;
    }
    if q >= 1.0 {
        // Every member hears every clear slot.
        out.push((n0, m));
        return;
    }
    let p_hi = if n0 > t {
        binomial_tail_gt(n0, t, q)
    } else {
        0.0
    };
    let k_hi = if p_hi > 0.0 {
        binomial_fast(rng, m, p_hi)
    } else {
        0
    };
    if m > k_hi {
        out.push((0, m - k_hi));
    }
    if k_hi == 0 {
        return;
    }
    // Walk v = t+1, t+2, … with the pmf ratio recurrence, splitting the
    // remaining members by the conditional probability pmf(v)/tail(v).
    let mut k_rem = k_hi;
    let mut v = t + 1;
    let mut pmf = ln_binomial_pmf(n0, v, q).exp();
    let mut tail = p_hi;
    let ratio = q / (1.0 - q);
    while k_rem > 0 {
        let take = if v >= n0 || tail <= f64::MIN_POSITIVE {
            k_rem
        } else {
            let p_take = (pmf / tail).clamp(0.0, 1.0);
            binomial_fast(rng, k_rem, p_take)
        };
        if take > 0 {
            out.push((v, take));
            k_rem -= take;
        }
        if k_rem == 0 || v >= n0 {
            if k_rem > 0 {
                out.push((n0, k_rem));
            }
            break;
        }
        tail -= pmf;
        pmf *= ratio * (n0 - v) as f64 / (v + 1) as f64;
        v += 1;
    }
}

/// Inserts a cohort into the builder, merging with an existing cohort of
/// the same [`CohortKey`] (counts and cost pools add; the first-inserted
/// representative state is kept).
fn push_merged(out: &mut Vec<Cohort>, index: &mut HashMap<CohortKey, usize>, c: Cohort) {
    let key = cohort_key(&c.node);
    match index.get(&key) {
        Some(&i) => {
            out[i].count += c.count;
            out[i].cost_pool += c.cost_pool;
        }
        None => {
            index.insert(key, out.len());
            out.push(c);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcb_adversary::rep_strategies::{BudgetedRepBlocker, NoJamRep, SuffixFractionRep};

    fn params() -> OneToNParams {
        OneToNParams::practical()
    }

    /// Force aggregate (anonymous-cohort) mode regardless of n.
    fn aggregate_config() -> CohortConfig {
        CohortConfig {
            exact_member_threshold: 0,
            ..CohortConfig::default()
        }
    }

    #[test]
    fn single_node_terminates_alone() {
        let p = params();
        let mut rng = RcbRng::new(1);
        let out = run_cohort(&p, 1, &mut NoJamRep, &mut rng, CohortConfig::default());
        assert!(out.all_terminated, "last epoch {}", out.last_epoch);
        assert!(out.all_informed);
        assert!(!out.truncated);
    }

    #[test]
    fn unjammed_broadcast_informs_everyone_exact_mode() {
        let p = params();
        let mut ok = 0;
        let trials = 10;
        for seed in 0..trials {
            let mut rng = RcbRng::new(seed);
            let out = run_cohort(&p, 16, &mut NoJamRep, &mut rng, CohortConfig::default());
            assert!(!out.truncated, "seed {seed}");
            if out.all_informed && out.all_terminated {
                ok += 1;
            }
        }
        assert!(ok >= 9, "informed+terminated in {ok}/{trials} runs");
    }

    #[test]
    fn unjammed_broadcast_informs_everyone_aggregate_mode() {
        let p = params();
        let mut ok = 0;
        let trials = 10;
        for seed in 0..trials {
            let mut rng = RcbRng::new(100 + seed);
            let out = run_cohort(&p, 64, &mut NoJamRep, &mut rng, aggregate_config());
            assert!(!out.truncated, "seed {seed}");
            if out.all_informed && out.all_terminated {
                ok += 1;
            }
        }
        assert!(ok >= 9, "informed+terminated in {ok}/{trials} runs");
    }

    #[test]
    fn termination_happens_near_the_ideal_epoch() {
        let p = params();
        for (n, cfg) in [(32usize, CohortConfig::default()), (64, aggregate_config())] {
            let mut rng = RcbRng::new(3);
            let out = run_cohort(&p, n, &mut NoJamRep, &mut rng, cfg);
            let ideal = p.ideal_epoch(n);
            assert!(
                out.last_epoch <= ideal + 3,
                "n {n}: terminated at epoch {} vs ideal {ideal}",
                out.last_epoch
            );
        }
    }

    #[test]
    fn jamming_charges_adversary_and_inflates_cost() {
        let p = params();
        let n = 16;
        let mut rng = RcbRng::new(4);
        let free = run_cohort(&p, n, &mut NoJamRep, &mut rng, CohortConfig::default());

        let mut rng = RcbRng::new(4);
        let mut adv = BudgetedRepBlocker::new(16 * free.slots, 1.0);
        let jammed = run_cohort(&p, n, &mut adv, &mut rng, CohortConfig::default());
        assert!(jammed.adversary_cost > 0);
        assert!(jammed.slots > free.slots);
        assert!(jammed.all_informed, "budget exhausted ⇒ delivery resumes");
    }

    #[test]
    fn epoch_cap_truncates() {
        let p = params();
        let mut rng = RcbRng::new(5);
        let mut adv = SuffixFractionRep::new(1.0);
        let cfg = CohortConfig {
            max_epoch: p.first_epoch + 2,
            ..CohortConfig::default()
        };
        let out = run_cohort(&p, 4, &mut adv, &mut rng, cfg);
        assert!(out.truncated);
        assert!(!out.all_terminated);
        assert_eq!(out.last_epoch, p.first_epoch + 2);
    }

    #[test]
    fn checked_run_reports_epoch_cap_as_typed_error() {
        let p = params();
        let mut rng = RcbRng::new(5);
        let mut adv = SuffixFractionRep::new(1.0);
        let cfg = CohortConfig {
            max_epoch: p.first_epoch + 2,
            ..CohortConfig::default()
        };
        let err = run_cohort_checked(&p, 4, &[0], &mut adv, &mut rng, cfg, &FaultPlan::none())
            .expect_err("fully blocked nodes never terminate");
        assert!(matches!(
            err,
            SimError::EpochBudgetExhausted { max_epoch, .. } if max_epoch == p.first_epoch + 2
        ));
    }

    #[test]
    fn an_elapsed_deadline_truncates_with_a_typed_error() {
        let p = params();
        let mut rng = RcbRng::new(7);
        let (out, err) = run_cohort_core(
            &p,
            16,
            &[0],
            &mut NoJamRep,
            &mut rng,
            CohortConfig::default(),
            &FaultPlan::none(),
            &Deadline::after(std::time::Duration::ZERO),
            &mut CohortStats::default(),
        );
        assert!(out.truncated);
        assert_eq!(out.slots, 0);
        assert_eq!(err, Some(SimError::DeadlineExceeded { slots: 0 }));
    }

    #[test]
    fn same_seed_runs_are_bit_identical() {
        let p = params();
        for cfg in [CohortConfig::default(), aggregate_config()] {
            for seed in 0..5u64 {
                let mut rng_a = RcbRng::new(seed);
                let mut adv_a = BudgetedRepBlocker::new(40_000, 1.0);
                let a = run_cohort(&p, 48, &mut adv_a, &mut rng_a, cfg);
                let mut rng_b = RcbRng::new(seed);
                let mut adv_b = BudgetedRepBlocker::new(40_000, 1.0);
                let b = run_cohort(&p, 48, &mut adv_b, &mut rng_b, cfg);
                assert_eq!(a, b, "seed {seed}");
                assert_eq!(rng_a, rng_b, "seed {seed}: RNG state must match");
            }
        }
    }

    #[test]
    fn aggregate_mean_cost_tracks_exact_mode() {
        // The pooled-cost path must agree with per-node draws on the mean:
        // compare aggregate vs all-tracked mode across trials at the same
        // n. (Distributions differ per node — the pool is smeared — but
        // totals are drawn from the same law.)
        let p = params();
        let n = 64;
        let trials = 12;
        let mean = |cfg: CohortConfig, base: u64| {
            let mut acc = 0.0;
            for s in 0..trials {
                let mut rng = RcbRng::new(base + s);
                let out = run_cohort(&p, n, &mut NoJamRep, &mut rng, cfg);
                acc += out.mean_cost();
            }
            acc / trials as f64
        };
        let exact = mean(CohortConfig::default(), 50);
        let agg = mean(aggregate_config(), 950);
        let rel = (exact - agg).abs() / exact.max(1.0);
        assert!(rel < 0.25, "exact {exact} vs aggregate {agg}");
    }

    #[test]
    fn first_reception_splits_the_uninformed_cohort() {
        // The lazy-materialization boundary: in aggregate mode the
        // population starts as one anonymous uninformed cohort plus the
        // tracked source, stays compressed while nobody hears anything,
        // and splits exactly when the first symmetric outcome diverges.
        let p = params();
        let mut rng = RcbRng::new(11);
        let (out, stats) =
            run_cohort_instrumented(&p, 64, &[0], &mut NoJamRep, &mut rng, aggregate_config());
        assert!(out.all_informed);
        assert_eq!(stats.tracked_nodes, 1, "only the source is materialized");
        assert!(
            stats.first_split_period.is_some(),
            "dissemination must break the uninformed cohort's symmetry"
        );
        assert!(stats.max_live_cohorts >= 2);

        // Determinism of the full trace: a second run with the same seed
        // reports the identical split boundary.
        let mut rng = RcbRng::new(11);
        let (out2, stats2) =
            run_cohort_instrumented(&p, 64, &[0], &mut NoJamRep, &mut rng, aggregate_config());
        assert_eq!(out, out2);
        assert_eq!(stats, stats2);
    }

    #[test]
    fn crash_restart_reconverges() {
        let p = params();
        let mut informed_runs = 0;
        let trials = 10;
        for seed in 0..trials {
            let mut rng = RcbRng::new(900 + seed);
            let out = run_cohort_faulted(
                &p,
                8,
                &[0],
                &mut NoJamRep,
                &mut rng,
                CohortConfig::default(),
                &FaultPlan::none().with_crash(3, 2, 6, true),
            );
            assert!(!out.truncated, "seed {seed}");
            if out.all_informed {
                informed_runs += 1;
            }
        }
        assert!(
            informed_runs >= 8,
            "re-converged in {informed_runs}/{trials}"
        );
    }

    #[test]
    fn crash_target_is_tracked_in_aggregate_mode() {
        let p = params();
        let mut rng = RcbRng::new(31);
        let mut stats = CohortStats::default();
        let (out, _) = run_cohort_core(
            &p,
            64,
            &[0],
            &mut NoJamRep,
            &mut rng,
            aggregate_config(),
            &FaultPlan::none().with_crash(7, 1, 4, false),
            &Deadline::NONE,
            &mut stats,
        );
        assert_eq!(stats.tracked_nodes, 2, "source + crash target");
        assert!(!out.truncated);
    }

    #[test]
    fn battery_fault_forces_exact_mode_and_caps_cost() {
        let p = params();
        let mut rng = RcbRng::new(9);
        let plain = run_cohort(&p, 8, &mut NoJamRep, &mut rng, CohortConfig::default());
        let mut rng = RcbRng::new(9);
        let capped = run_cohort_faulted(
            &p,
            8,
            &[0],
            &mut NoJamRep,
            &mut rng,
            aggregate_config(), // battery overrides the aggregate request
            &FaultPlan::none().with_battery(20),
        );
        assert!(!capped.truncated, "dead nodes count as halted");
        assert!(
            capped.max_cost() < plain.max_cost(),
            "capped {} vs plain {}",
            capped.max_cost(),
            plain.max_cost()
        );
    }

    #[test]
    fn lossy_reception_degrades_gracefully() {
        let p = params();
        let mut informed_runs = 0;
        let trials = 10;
        for seed in 0..trials {
            let mut rng = RcbRng::new(300 + seed);
            let out = run_cohort_faulted(
                &p,
                16,
                &[0],
                &mut NoJamRep,
                &mut rng,
                CohortConfig::default(),
                &FaultPlan::none().with_loss(0.2),
            );
            assert!(!out.truncated, "seed {seed}");
            if out.all_informed {
                informed_runs += 1;
            }
        }
        assert!(informed_runs >= 8, "informed in {informed_runs}/{trials}");
    }

    #[test]
    fn large_population_compresses() {
        // n = 4096 in aggregate mode: the run must complete quickly (noise
        // saturation keeps the population to a handful of cohorts through
        // the early epochs) and inform essentially everyone.
        let p = params();
        let mut rng = RcbRng::new(21);
        let (out, stats) =
            run_cohort_instrumented(&p, 4096, &[0], &mut NoJamRep, &mut rng, aggregate_config());
        assert!(!out.truncated, "last epoch {}", out.last_epoch);
        assert!(
            out.informed as f64 >= 0.99 * 4096.0,
            "informed {}",
            out.informed
        );
        assert!(
            stats.max_live_cohorts < 4096,
            "population must stay compressed: {} cohorts",
            stats.max_live_cohorts
        );
    }

    #[test]
    fn split_by_clear_conserves_members() {
        let mut rng = RcbRng::new(15);
        let mut out = Vec::new();
        for &(m, n0, q, t) in &[
            (1000u64, 200u64, 0.3f64, 30u64),
            (5, 0, 0.5, 0),
            (7, 100, 1.5, 10),  // saturated listen probability
            (100, 50, 0.9, 60), // threshold above support
        ] {
            split_by_clear(&mut rng, m, n0, q, t, &mut out);
            let total: u64 = out.iter().map(|&(_, c)| c).sum();
            assert_eq!(total, m, "m {m} n0 {n0} q {q} t {t}");
            for &(v, _) in &out {
                assert!(v <= n0, "value {v} outside support");
            }
        }
    }

    #[test]
    fn split_by_clear_mean_matches_binomial() {
        // The above-threshold histogram must reproduce Binomial(n0, q)
        // restricted to v > t: check the conditional mean.
        let mut rng = RcbRng::new(16);
        let (m, n0, q, t) = (200_000u64, 100u64, 0.5f64, 49u64);
        let mut out = Vec::new();
        split_by_clear(&mut rng, m, n0, q, t, &mut out);
        let hi: Vec<&(u64, u64)> = out.iter().filter(|&&(v, _)| v > t).collect();
        let hi_members: u64 = hi.iter().map(|&&(_, c)| c).sum();
        let hi_mean: f64 =
            hi.iter().map(|&&(v, c)| v as f64 * c as f64).sum::<f64>() / hi_members as f64;
        // E[V | V > 49] for Bin(100, 0.5) = 53.6861 (exact summation).
        assert!((hi_mean - 53.686).abs() < 0.1, "conditional mean {hi_mean}");
        let p_hi_emp = hi_members as f64 / m as f64;
        let p_hi = binomial_tail_gt(n0, t, q);
        assert!((p_hi_emp - p_hi).abs() < 0.01, "{p_hi_emp} vs {p_hi}");
    }

    #[test]
    fn jammed_in_prefix_counts() {
        assert_eq!(jammed_in_prefix(&JamPlan::None, 10, 100), 0);
        assert_eq!(jammed_in_prefix(&JamPlan::All, 10, 100), 10);
        assert_eq!(jammed_in_prefix(&JamPlan::Suffix(95), 10, 100), 5);
        assert_eq!(jammed_in_prefix(&JamPlan::Suffix(50), 10, 100), 0);
        assert_eq!(
            jammed_in_prefix(&JamPlan::Slots(vec![0, 5, 20]), 10, 100),
            2
        );
        assert_eq!(jammed_in_prefix(&JamPlan::Suffix(10), 0, 100), 0);
    }
}
