//! Re-armable protocol sessions: construct once, run many times.
//!
//! The legacy entry points (`run_duel*`, `run_broadcast*`, `run_cohort*`,
//! `run_exact*`) follow a construct-run-discard lifecycle: every execution
//! allocates fresh protocol state, runs it to completion, and drops it. A
//! *session* keeps the allocation alive across executions:
//! [`Session::rearm`] resets protocol state, epoch position, and cost
//! ledgers to slot 0 **without reallocating**, and hands the next run a
//! fresh RNG stream. After `rearm(seed)`, a session's run is bit-identical
//! to a freshly constructed instance at `seed` (certified by the golden
//! suite in `crates/sim/tests/rearm_equivalence.rs`).
//!
//! Sessions are the substrate of the streaming workload
//! ([`crate::scenario::StreamWorkload`]): a queue of messages drains
//! through one re-armed session while a single adversary budget spans the
//! stream. The adversary is therefore *not* owned by the session — the
//! caller lends it per run, deciding between runs whether its budget
//! persists ([`crate::scenario::StreamAlloc::Persistent`]) or refills
//! ([`RepetitionAdversary::rearm`],
//! [`crate::scenario::StreamAlloc::PerMessage`]).
//!
//! Three session types live with their engines ([`DuelSession`],
//! [`BroadcastSession`], [`CohortSession`]); this module adds the
//! slot-granular [`ExactBroadcastSession`] and the [`Session`] trait that
//! unifies the broadcast-shaped ones for the streaming loop.

use rcb_adversary::traits::RepetitionAdversary;
use rcb_adversary::RepAsSlotAdversary;
use rcb_channel::partition::Partition;
use rcb_core::one_to_n::{OneToNParams, OneToNSchedule, OneToNSlotNode};
use rcb_core::one_to_one::profile::DuelProfile;
use rcb_core::protocol::{Rearm, SlotProtocol};
use rcb_mathkit::rng::RcbRng;

use crate::cohort::CohortSession;
use crate::deadline::Deadline;
use crate::duel::DuelSession;
use crate::error::SimError;
use crate::exact::{run_exact_in, ExactConfig, ExactScratch};
use crate::fast::BroadcastSession;
use crate::faults::FaultPlan;
use crate::outcome::{BroadcastOutcome, DuelOutcome};

/// A re-armable protocol execution: state is retained between runs and
/// reset in place by [`rearm`](Session::rearm).
///
/// Contract: `rearm(seed)` followed by `run(..)` produces an outcome (and
/// consumes adversary state) bit-identical to a freshly constructed
/// session at `seed` running the same adversary. A session must be armed
/// — just constructed, or re-armed since its previous run — before each
/// `run` call; running twice without a `rearm` in between continues the
/// RNG stream over terminal protocol state and is unspecified.
pub trait Session {
    /// The engine's outcome type ([`DuelOutcome`] or [`BroadcastOutcome`]).
    type Outcome;

    /// Resets protocol state, epoch position, and cost ledgers to slot 0
    /// without reallocating, and replaces the RNG with `RcbRng::new(seed)`.
    fn rearm(&mut self, seed: u64);

    /// Runs one execution against `adversary` on the session's RNG.
    fn run(
        &mut self,
        adversary: &mut dyn RepetitionAdversary,
        deadline: &Deadline,
    ) -> (Self::Outcome, Option<SimError>);
}

impl<P: DuelProfile> Session for DuelSession<P> {
    type Outcome = DuelOutcome;

    fn rearm(&mut self, seed: u64) {
        DuelSession::rearm(self, seed);
    }

    fn run(
        &mut self,
        adversary: &mut dyn RepetitionAdversary,
        deadline: &Deadline,
    ) -> (DuelOutcome, Option<SimError>) {
        DuelSession::run(self, adversary, deadline)
    }
}

impl Session for BroadcastSession {
    type Outcome = BroadcastOutcome;

    fn rearm(&mut self, seed: u64) {
        BroadcastSession::rearm(self, seed);
    }

    fn run(
        &mut self,
        adversary: &mut dyn RepetitionAdversary,
        deadline: &Deadline,
    ) -> (BroadcastOutcome, Option<SimError>) {
        BroadcastSession::run(self, adversary, deadline)
    }
}

impl Session for CohortSession {
    type Outcome = BroadcastOutcome;

    fn rearm(&mut self, seed: u64) {
        CohortSession::rearm(self, seed);
    }

    fn run(
        &mut self,
        adversary: &mut dyn RepetitionAdversary,
        deadline: &Deadline,
    ) -> (BroadcastOutcome, Option<SimError>) {
        CohortSession::run(self, adversary, deadline)
    }
}

/// A re-armable slot-granular 1-to-n execution: one [`OneToNSlotNode`] per
/// node driven by the exact engine, with the node vector, schedule,
/// partition, and [`ExactScratch`] (ledger + per-slot buffers) all retained
/// across runs. [`rearm`](Self::rearm) resets each node via [`Rearm`] and
/// zeroes the ledger in place.
#[derive(Debug)]
pub struct ExactBroadcastSession {
    n: usize,
    nodes: Vec<OneToNSlotNode>,
    schedule: OneToNSchedule,
    partition: Partition,
    scratch: ExactScratch,
    config: ExactConfig,
    faults: FaultPlan,
    rng: RcbRng,
}

impl ExactBroadcastSession {
    /// # Panics
    ///
    /// Panics on `n == 0`, an empty or out-of-range `sources` list, or an
    /// invalid fault plan — the same preconditions the fast engines assert.
    pub fn new(
        params: OneToNParams,
        n: usize,
        sources: Vec<usize>,
        config: ExactConfig,
        faults: FaultPlan,
        seed: u64,
    ) -> Self {
        assert!(n >= 1, "need at least one node");
        assert!(!sources.is_empty(), "need at least one source");
        assert!(
            sources.iter().all(|&s| s < n),
            "source id out of range (n = {n})"
        );
        assert!(faults.validate().is_ok(), "invalid fault plan");
        let nodes: Vec<OneToNSlotNode> = (0..n)
            .map(|u| OneToNSlotNode::new(params, sources.contains(&u)))
            .collect();
        Self {
            n,
            nodes,
            schedule: OneToNSchedule::new(params),
            partition: Partition::uniform(n),
            scratch: ExactScratch::new(n),
            config,
            faults,
            rng: RcbRng::new(seed),
        }
    }

    /// Re-arms every node, the ledger, and the fault flags to slot 0 on a
    /// fresh RNG stream, reusing every allocation.
    pub fn rearm(&mut self, seed: u64) {
        for node in &mut self.nodes {
            node.rearm();
        }
        self.scratch.rearm();
        self.rng = RcbRng::new(seed);
    }

    /// Runs one execution against `adversary` on the session's RNG. The
    /// session must be armed (just constructed, or [`rearm`](Self::rearm)
    /// since the previous run). The repetition adversary is wrapped in a
    /// fresh [`RepAsSlotAdversary`] per run — its per-repetition cursor
    /// starts clean while the borrowed strategy's budget carries over.
    pub fn run(
        &mut self,
        adversary: &mut dyn RepetitionAdversary,
        deadline: &Deadline,
    ) -> (BroadcastOutcome, Option<SimError>) {
        let mut refs: Vec<&mut dyn SlotProtocol> = Vec::with_capacity(self.n);
        for node in self.nodes.iter_mut() {
            refs.push(node);
        }
        let mut adv = RepAsSlotAdversary::broadcast(adversary, self.n);
        let (out, err) = run_exact_in(
            &mut self.scratch,
            &mut refs,
            &mut adv,
            &self.schedule,
            &self.partition,
            &mut self.rng,
            self.config,
            None,
            &self.faults,
            deadline,
        );
        let informed = self.nodes.iter().filter(|v| v.received_message()).count();
        (
            BroadcastOutcome {
                n: self.n,
                informed,
                all_informed: informed == self.n,
                all_terminated: out.completed,
                safety_terminations: 0, // not tracked at slot granularity
                node_costs: (0..self.n).map(|u| out.ledger.node_cost(u)).collect(),
                adversary_cost: out.ledger.adversary_cost(),
                slots: out.slots,
                last_epoch: 0, // not tracked by the exact engine
                truncated: !out.completed,
            },
            err,
        )
    }
}

impl Session for ExactBroadcastSession {
    type Outcome = BroadcastOutcome;

    fn rearm(&mut self, seed: u64) {
        ExactBroadcastSession::rearm(self, seed);
    }

    fn run(
        &mut self,
        adversary: &mut dyn RepetitionAdversary,
        deadline: &Deadline,
    ) -> (BroadcastOutcome, Option<SimError>) {
        ExactBroadcastSession::run(self, adversary, deadline)
    }
}
