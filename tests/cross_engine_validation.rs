//! Cross-engine validation: the fast engines must agree with the exact
//! slot-level engine *in distribution*.
//!
//! The engines consume randomness differently, so trajectories cannot be
//! compared run-for-run. These tests drive the reusable conformance
//! harness (`rcb_sim::conformance`): paired trial batches on both engines
//! with Mann–Whitney and Kolmogorov–Smirnov verdicts per metric, at a
//! significance level where a rejection is a 1-in-1000 fluke under the
//! null. Crucially both engines run the **same** adversary policy — the
//! exact engine through `RepAsSlotAdversary` — which is what the ad-hoc
//! predecessor of these tests got wrong (it compared a 2-units-per-slot
//! slot blocker against a 1-unit-per-slot repetition blocker and papered
//! over the gap with a 15% mean tolerance).

use rcb::prelude::*;
use rcb_sim::conformance::{run_broadcast_cell, run_duel_cell, CellReport};

const TRIALS: u64 = 60;
const ALPHA: f64 = 1e-3;

fn cfg(seed: u64) -> ConformanceConfig {
    ConformanceConfig {
        trials: TRIALS,
        seed,
        alpha: ALPHA,
        parallelism: Parallelism::Auto,
    }
}

fn assert_conformant(report: &CellReport) {
    assert!(
        !report.diverges(ALPHA),
        "engine divergence in cell `{}` (worst p = {}):\n{:#?}",
        report.name,
        report.worst_p(),
        report.metrics
    );
}

#[test]
fn duel_engines_agree_without_jamming() {
    let cell = DuelCell::new(0.05, 6, AdversarySpec::NoJam);
    assert_conformant(&run_duel_cell(&cell, &cfg(10)));
}

#[test]
fn duel_engines_agree_under_blanket_jamming() {
    let cell = DuelCell::new(
        0.05,
        6,
        AdversarySpec::Budgeted {
            budget: 512,
            fraction: 1.0,
        },
    );
    assert_conformant(&run_duel_cell(&cell, &cfg(30)));
}

/// Larger budgets stress the multi-epoch escalation path: the adversary
/// blocks several full epochs before running dry, so any drift in epoch
/// bookkeeping (thresholds, phase lengths, budget spend) shows up here.
#[test]
fn duel_engines_agree_under_heavy_jamming() {
    let cell = DuelCell::new(
        0.05,
        6,
        AdversarySpec::Budgeted {
            budget: 2048,
            fraction: 1.0,
        },
    );
    assert_conformant(&run_duel_cell(&cell, &cfg(50)));
}

/// Distribution-shape check beyond the cost metrics: the KS verdict inside
/// the harness compares full empirical CDFs, and the keep-alive adversary
/// produces the most structured (bimodal) cost distributions.
#[test]
fn duel_engines_agree_in_distribution() {
    let cell = DuelCell::new(
        0.05,
        6,
        AdversarySpec::KeepAlive {
            budget: 1024,
            fraction: 1.0,
        },
    );
    let report = run_duel_cell(&cell, &cfg(70));
    assert_conformant(&report);
    // The harness must actually have tested the cost distributions.
    assert!(report.metrics.iter().any(|m| m.metric == "max_cost"));
}

/// 1-to-n: exact engine at slot level vs the fast repetition engine.
#[test]
fn broadcast_engines_agree_on_small_network() {
    // first_epoch 4 keeps the exact engine's slot count tame.
    let cell = BroadcastCell::new(5, 4, AdversarySpec::NoJam);
    let c = ConformanceConfig {
        trials: 25,
        ..cfg(1000)
    };
    assert_conformant(&run_broadcast_cell(&cell, &c));
}

/// Jammed 1-to-n: the adapter targets the single uniform group at one
/// budget unit per slot, exactly the fast engine's accounting.
#[test]
fn broadcast_engines_agree_under_jamming() {
    let cell = BroadcastCell::new(
        5,
        4,
        AdversarySpec::Budgeted {
            budget: 256,
            fraction: 1.0,
        },
    );
    let c = ConformanceConfig {
        trials: 25,
        ..cfg(2000)
    };
    assert_conformant(&run_broadcast_cell(&cell, &c));
}

/// Fault injection under jamming: the loss coin lives in different places
/// in the two engines (a per-reception receiver condition vs. a coin on
/// each sampled message event), so a lossy cell guards the equivalence of
/// both implementations.
#[test]
fn duel_engines_agree_under_loss_and_jamming() {
    let cell = DuelCell::new(
        0.05,
        6,
        AdversarySpec::Budgeted {
            budget: 512,
            fraction: 1.0,
        },
    )
    .with_fault(FaultPlan::none().with_loss(0.15));
    assert_conformant(&run_duel_cell(&cell, &cfg(90)));
}

/// Crash–restart in 1-to-n: the window is period-aligned in both engines
/// and the reboot wipes volatile state; any off-by-one in period
/// accounting between the engines diverges here.
#[test]
fn broadcast_engines_agree_under_crash_restart() {
    let cell = BroadcastCell::new(5, 4, AdversarySpec::NoJam)
        .with_fault(FaultPlan::none().with_crash(1, 2, 6, true));
    let c = ConformanceConfig {
        trials: 25,
        ..cfg(3000)
    };
    assert_conformant(&run_broadcast_cell(&cell, &c));
}
