//! Cross-engine validation: the fast engines must agree with the exact
//! slot-level engine *in distribution*.
//!
//! The engines consume randomness differently, so trajectories cannot be
//! compared run-for-run; instead each test runs many trials on both
//! engines and compares the means of the load-bearing statistics (costs,
//! delivery rates, informed counts) within Monte-Carlo tolerances.

use rcb::prelude::*;
use rcb_core::one_to_n::OneToNSchedule;
use rcb_core::one_to_one::schedule::DuelSchedule;
use rcb_mathkit::hypothesis::mann_whitney_u;
use rcb_mathkit::stats::RunningStats;

const TRIALS: u64 = 60;

/// Exact-engine duel (Figure 1) under a blanket blocker.
fn exact_duel_stats(budget: u64, seed_base: u64) -> (RunningStats, RunningStats, f64) {
    let profile = Fig1Profile::with_start_epoch(0.05, 6);
    let mut alice_costs = RunningStats::new();
    let mut bob_costs = RunningStats::new();
    let mut delivered = 0u64;
    for s in 0..TRIALS {
        let mut alice = AliceProtocol::new(profile);
        let mut bob = BobProtocol::new(profile);
        let schedule = DuelSchedule::new(6);
        let partition = Partition::pair();
        let mut rng = RcbRng::new(seed_base + s);
        let mut adv = BudgetedPhaseBlocker::new(budget, 1.0);
        let out = run_exact(
            &mut [&mut alice, &mut bob],
            &mut adv,
            &schedule,
            &partition,
            &mut rng,
            ExactConfig::default(),
            None,
        );
        assert!(out.completed);
        alice_costs.push(out.ledger.node_cost(0) as f64);
        bob_costs.push(out.ledger.node_cost(1) as f64);
        delivered += bob.received_message() as u64;
    }
    (alice_costs, bob_costs, delivered as f64 / TRIALS as f64)
}

/// Fast-engine duel with the equivalent repetition-level blocker.
fn fast_duel_stats(budget: u64, seed_base: u64) -> (RunningStats, RunningStats, f64) {
    let profile = Fig1Profile::with_start_epoch(0.05, 6);
    let mut alice_costs = RunningStats::new();
    let mut bob_costs = RunningStats::new();
    let mut delivered = 0u64;
    for s in 0..TRIALS {
        let mut rng = RcbRng::new(seed_base + s);
        let mut adv = BudgetedRepBlocker::new(budget, 1.0);
        let out = run_duel(&profile, &mut adv, &mut rng, DuelConfig::default());
        alice_costs.push(out.alice_cost as f64);
        bob_costs.push(out.bob_cost as f64);
        delivered += out.delivered as u64;
    }
    (alice_costs, bob_costs, delivered as f64 / TRIALS as f64)
}

fn means_agree(a: &RunningStats, b: &RunningStats, label: &str) {
    // Allow 4 joint standard errors plus a small absolute slack.
    let tol = 4.0 * (a.sem().powi(2) + b.sem().powi(2)).sqrt() + 0.15 * a.mean().max(b.mean());
    assert!(
        (a.mean() - b.mean()).abs() <= tol,
        "{label}: exact {} vs fast {} (tol {tol})",
        a.mean(),
        b.mean()
    );
}

#[test]
fn duel_engines_agree_without_jamming() {
    let (ea, eb, ed) = exact_duel_stats(0, 10);
    let (fa, fb, fd) = fast_duel_stats(0, 20);
    means_agree(&ea, &fa, "alice cost, T = 0");
    means_agree(&eb, &fb, "bob cost, T = 0");
    assert!(
        (ed - fd).abs() < 0.15,
        "delivery rates: exact {ed} vs fast {fd}"
    );
}

#[test]
fn duel_engines_agree_under_blanket_jamming() {
    let budget = 512;
    let (ea, eb, ed) = exact_duel_stats(budget, 30);
    let (fa, fb, fd) = fast_duel_stats(budget, 40);
    means_agree(&ea, &fa, "alice cost, jammed");
    means_agree(&eb, &fb, "bob cost, jammed");
    assert!(
        (ed - fd).abs() < 0.15,
        "delivery rates: exact {ed} vs fast {fd}"
    );
}

/// Beyond means: the full cost *distributions* of the two engines must be
/// indistinguishable under a rank test.
#[test]
fn duel_engines_agree_in_distribution() {
    let profile = Fig1Profile::with_start_epoch(0.05, 6);
    let budget = 512u64;
    let mut exact_costs = Vec::new();
    for s in 0..TRIALS {
        let mut alice = AliceProtocol::new(profile);
        let mut bob = BobProtocol::new(profile);
        let schedule = DuelSchedule::new(6);
        let partition = Partition::pair();
        let mut rng = RcbRng::new(7_000 + s);
        let mut adv = BudgetedPhaseBlocker::new(budget, 1.0);
        let out = run_exact(
            &mut [&mut alice, &mut bob],
            &mut adv,
            &schedule,
            &partition,
            &mut rng,
            ExactConfig::default(),
            None,
        );
        exact_costs.push(out.ledger.max_node_cost() as f64);
    }
    let mut fast_costs = Vec::new();
    for s in 0..TRIALS {
        let mut rng = RcbRng::new(9_000 + s);
        let mut adv = BudgetedRepBlocker::new(budget, 1.0);
        let out = run_duel(&profile, &mut adv, &mut rng, DuelConfig::default());
        fast_costs.push(out.max_cost() as f64);
    }
    let r = mann_whitney_u(&exact_costs, &fast_costs);
    // With 60 + 60 samples from the same distribution, p < 0.001 would be
    // a 1-in-1000 fluke — treat it as an engine divergence.
    assert!(
        r.p_two_sided > 0.001,
        "rank test rejects engine agreement: p = {}, effect = {}",
        r.p_two_sided,
        r.effect_size
    );
}

/// 1-to-n: exact engine at slot level vs the fast repetition engine.
#[test]
fn broadcast_engines_agree_on_small_network() {
    let mut params = OneToNParams::practical();
    params.first_epoch = 4; // keep the exact engine's slot count tame
    let n = 5;
    let trials = 25u64;

    // Exact engine.
    let mut exact_mean_cost = RunningStats::new();
    let mut exact_informed = 0usize;
    for s in 0..trials {
        let mut nodes: Vec<OneToNSlotNode> = (0..n)
            .map(|u| OneToNSlotNode::new(params, u == 0))
            .collect();
        let mut refs: Vec<&mut dyn SlotProtocol> = Vec::new();
        for node in nodes.iter_mut() {
            refs.push(node);
        }
        let schedule = OneToNSchedule::new(params);
        let partition = Partition::uniform(n);
        let mut rng = RcbRng::new(1000 + s);
        let mut adv = NoJam;
        let out = run_exact(
            &mut refs,
            &mut adv,
            &schedule,
            &partition,
            &mut rng,
            ExactConfig {
                max_slots: 40_000_000,
            },
            None,
        );
        assert!(out.completed, "exact 1-to-n run must terminate");
        exact_mean_cost.push(out.ledger.mean_node_cost());
        exact_informed += nodes.iter().all(|v| v.received_message()) as usize;
    }

    // Fast engine.
    let mut fast_mean_cost = RunningStats::new();
    let mut fast_informed = 0usize;
    for s in 0..trials {
        let mut rng = RcbRng::new(5000 + s);
        let mut adv = NoJamRep;
        let out = run_broadcast(&params, n, &mut adv, &mut rng, FastConfig::default());
        fast_mean_cost.push(out.mean_cost());
        fast_informed += out.all_informed as usize;
    }

    means_agree(&exact_mean_cost, &fast_mean_cost, "1-to-n mean node cost");
    let (er, fr) = (
        exact_informed as f64 / trials as f64,
        fast_informed as f64 / trials as f64,
    );
    assert!(
        (er - fr).abs() < 0.25,
        "informed rates: exact {er} vs fast {fr}"
    );
}
