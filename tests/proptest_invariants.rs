//! Property-based tests (proptest) on core invariants: channel physics,
//! energy accounting, jam plans, state machines, and samplers under
//! arbitrary inputs.

use proptest::prelude::*;
use rcb::prelude::*;
use rcb_adversary::traits::{JamPlan, RepetitionContext, SlotContext};
use rcb_channel::ledger::EnergyLedger;
use rcb_channel::slot::{resolve_slot, JamDecision};
use rcb_core::one_to_n::OneToNNode;
use rcb_core::one_to_one::schedule::DuelSchedule;
use rcb_core::one_to_one::state::{AliceState, BobState};
use rcb_mathkit::sample::{binomial, sample_slots};

fn arb_action() -> impl Strategy<Value = Action> {
    prop_oneof![
        Just(Action::Sleep),
        Just(Action::Listen),
        Just(Action::Send(Payload::message())),
        Just(Action::Send(Payload::Noise)),
        Just(Action::Send(Payload::nack())),
    ]
}

proptest! {
    /// Channel: energy conservation — every active node is charged exactly
    /// once per slot; sleepers never.
    #[test]
    fn ledger_charges_match_actions(actions in prop::collection::vec(arb_action(), 1..20)) {
        let n = actions.len();
        let partition = Partition::uniform(n);
        let mut ledger = EnergyLedger::new(n);
        resolve_slot(&actions, &JamDecision::none(), &partition, &mut ledger);
        for (i, a) in actions.iter().enumerate() {
            prop_assert_eq!(ledger.node_cost(i), a.is_active() as u64);
        }
        prop_assert_eq!(ledger.adversary_cost(), 0);
    }

    /// Channel: a message is decodable iff there is exactly one sender and
    /// no jamming; listeners always agree with each other.
    #[test]
    fn listeners_agree(actions in prop::collection::vec(arb_action(), 2..16), jam in any::<bool>()) {
        let n = actions.len();
        let partition = Partition::uniform(n);
        let mut ledger = EnergyLedger::new(n);
        let decision = if jam { JamDecision::jam_all(&partition) } else { JamDecision::none() };
        let res = resolve_slot(&actions, &decision, &partition, &mut ledger);
        let mut receptions = res.receptions.iter().map(|(_, r)| r);
        if let Some(first) = receptions.next() {
            for r in receptions {
                prop_assert_eq!(r, first, "all listeners in one group hear the same thing");
            }
        }
        let senders = actions.iter().filter(|a| matches!(a, Action::Send(_))).count();
        for (_, r) in &res.receptions {
            match r {
                Reception::Received(_) => {
                    prop_assert!(!jam && senders == 1);
                }
                Reception::Clear => prop_assert!(!jam && senders == 0),
                Reception::Noise => prop_assert!(jam || senders >= 1),
            }
        }
    }

    /// Jam plans: jam_count and is_jammed agree for every plan shape.
    #[test]
    fn jam_plan_count_matches_membership(
        len in 1u64..512,
        suffix in 0u64..600,
        slots in prop::collection::btree_set(0u64..512, 0..32),
    ) {
        let plans = vec![
            JamPlan::None,
            JamPlan::All,
            JamPlan::Suffix(suffix),
            JamPlan::Slots(slots.into_iter().collect()),
        ];
        for plan in plans {
            let by_count = plan.jam_count(len);
            let by_membership = (0..len).filter(|&t| plan.is_jammed(t, len)).count() as u64;
            prop_assert_eq!(by_count, by_membership, "plan {:?}", plan);
        }
    }

    /// Sampler: slot samples are sorted, unique, in range, and their count
    /// is the corresponding binomial's support.
    #[test]
    fn sample_slots_invariants(seed in any::<u64>(), n in 0u64..10_000, p in 0.0f64..1.0) {
        let mut rng = RcbRng::new(seed);
        let slots = sample_slots(&mut rng, n, p);
        prop_assert!(slots.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(slots.iter().all(|&s| s < n));
        prop_assert!(slots.len() as u64 <= n);
    }

    /// Sampler: binomial is within support bounds.
    #[test]
    fn binomial_support(seed in any::<u64>(), n in 0u64..100_000, p in 0.0f64..1.0) {
        let mut rng = RcbRng::new(seed);
        let k = binomial(&mut rng, n, p);
        prop_assert!(k <= n);
    }

    /// Figure 1 state machines: whatever the phase aggregates, Alice and
    /// Bob never un-halt, and epochs never decrease.
    #[test]
    fn duel_states_are_monotone(
        rounds in prop::collection::vec((any::<bool>(), 0u64..100, 0.0f64..20.0), 1..50)
    ) {
        let mut alice = AliceState::new(5);
        let mut bob = BobState::new(5);
        let mut last_epoch_a = alice.epoch();
        let mut last_epoch_b = bob.epoch();
        for (flag, noise, thr) in rounds {
            if !alice.is_done() {
                alice.end_epoch(flag, noise, thr);
                prop_assert!(alice.epoch() >= last_epoch_a);
                last_epoch_a = alice.epoch();
            }
            if !bob.is_done() {
                match bob.end_send_phase(flag, noise, thr) {
                    rcb_core::one_to_one::BobSendOutcome::ContinueToNack => {
                        bob.end_nack_phase();
                    }
                    _ => prop_assert!(bob.is_done()),
                }
                prop_assert!(bob.epoch() >= last_epoch_b);
                last_epoch_b = bob.epoch();
            }
        }
    }

    /// Figure 2 node: S_u never drops below s_init within an epoch, grows
    /// monotonically with clear slots, and status only moves forward.
    #[test]
    fn one_to_n_node_invariants(
        reps in prop::collection::vec((0u64..100_000, 0u64..10_000), 1..60)
    ) {
        let params = OneToNParams::practical();
        let mut node = OneToNNode::new(&params, false);
        let rank = |s: rcb_core::one_to_n::Status| match s {
            rcb_core::one_to_n::Status::Uninformed => 0,
            rcb_core::one_to_n::Status::Informed => 1,
            rcb_core::one_to_n::Status::Helper => 2,
            rcb_core::one_to_n::Status::Terminated => 3,
        };
        let mut last_rank = rank(node.status());
        for (clear, msgs) in reps {
            let s_before = node.s();
            node.end_repetition(&params, clear, msgs);
            if node.is_terminated() {
                break;
            }
            prop_assert!(node.s() >= s_before, "S_u never shrinks within an epoch");
            prop_assert!(node.s() >= params.s_init);
            let r = rank(node.status());
            prop_assert!(r >= last_rank, "status is monotone");
            last_rank = r;
        }
    }

    /// Adapter: driving a repetition strategy through `RepAsSlotAdversary`
    /// spends exactly what driving it directly would — per period, the
    /// integrated per-slot jam decisions equal the plan's `jam_count`, and
    /// only the listening party's group is ever hit (even periods jam Bob's
    /// group 1, odd periods Alice's group 0) at one budget unit per slot.
    #[test]
    fn adapter_matches_direct_plans(
        budget in 0u64..5_000,
        q in 0.0f64..=1.0,
        epoch in 1u32..10,
        periods in 1u64..20,
    ) {
        let mut direct = BudgetedRepBlocker::new(budget, q);
        let mut adapter = RepAsSlotAdversary::duel(BudgetedRepBlocker::new(budget, q));
        let len = 1u64 << epoch;
        for period in 0..periods {
            let plan = direct.plan(&RepetitionContext {
                epoch,
                repetition: period,
                slots: len,
                active_nodes: 2,
            });
            let mut unrolled = 0u64;
            for offset in 0..len {
                let d = adapter.decide(&SlotContext {
                    slot: period * len + offset,
                    period,
                    offset,
                    period_len: len,
                    groups: 2,
                });
                unrolled += d.jam_count();
                if d.jam_mask != 0 {
                    let expect = if period % 2 == 0 { 0b10 } else { 0b01 };
                    prop_assert_eq!(d.jam_mask, expect, "period {} jams the listener only", period);
                }
            }
            prop_assert_eq!(unrolled, plan.jam_count(len), "period {}", period);
        }
        prop_assert_eq!(adapter.remaining_budget(), direct.remaining_budget());
    }

    /// Duel schedule: locate is the inverse of cumulative phase lengths.
    #[test]
    fn duel_schedule_roundtrip(start in 1u32..10, slot in 0u64..1_000_000) {
        let s = DuelSchedule::new(start);
        let loc = s.locate_duel(slot);
        prop_assert!(loc.epoch >= start);
        prop_assert!(loc.offset < (1u64 << loc.epoch));
        // Reconstruct the global slot from the location.
        let phase_extra = match loc.phase {
            rcb_core::one_to_one::PhaseKind::Send => 0,
            rcb_core::one_to_one::PhaseKind::Nack => 1u64 << loc.epoch,
        };
        let rebuilt = s.slots_before_epoch(loc.epoch) + phase_extra + loc.offset;
        prop_assert_eq!(rebuilt, slot);
    }
}
