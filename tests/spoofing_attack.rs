//! The Theorem 5 model boundary, demonstrated end to end: Figure 1 is
//! only resource-competitive because Bob's nacks are authenticated. Give
//! the adversary the power to spoof nacks and a trickle of fake packets
//! keeps Alice paying her full per-epoch budget — her cost grows
//! *exponentially* per unit of adversary spend, which is exactly why the
//! spoofing model's optimum degrades to the golden-ratio exponent.

use rcb::prelude::*;
use rcb_adversary::slot_strategies::NackSpoofer;
use rcb_channel::trace::{ReceptionKind, Trace};
use rcb_core::one_to_one::schedule::DuelSchedule;
use rcb_core::one_to_one::PhaseKind;

fn run_with_spoofer(budget: u64, seed: u64) -> (u64, u64, bool, bool) {
    let profile = Fig1Profile::with_start_epoch(0.05, 6);
    let mut alice = AliceProtocol::new(profile);
    let mut bob = BobProtocol::new(profile);
    let schedule = DuelSchedule::new(6);
    let partition = Partition::pair();
    let mut rng = RcbRng::new(seed);
    let mut adv = NackSpoofer::new(budget, 4, seed ^ 0x5F00F);
    let out = run_exact(
        &mut [&mut alice, &mut bob],
        &mut adv,
        &schedule,
        &partition,
        &mut rng,
        ExactConfig {
            max_slots: 10_000_000,
        },
        None,
    );
    (
        out.ledger.node_cost(0),
        out.ledger.adversary_cost(),
        bob.received_message(),
        out.completed,
    )
}

#[test]
fn spoofed_nacks_bankrupt_alice_not_the_adversary() {
    let mut total_alice = 0u64;
    let mut total_adv = 0u64;
    let trials = 10;
    for seed in 0..trials {
        let (alice_cost, adv_cost, delivered, completed) = run_with_spoofer(60, seed);
        assert!(completed, "run must end once the spoof budget is exhausted");
        // Spoofing does not jam: the message itself still gets through.
        assert!(delivered, "seed {seed}: delivery is unaffected by spoofing");
        total_alice += alice_cost;
        total_adv += adv_cost;
    }
    // The attack's exchange rate: Alice pays an order of magnitude more
    // than the adversary (and the gap widens exponentially with budget —
    // each extra epoch of lifetime costs the adversary O(1) and Alice
    // Θ(2^(i/2))).
    assert!(
        total_alice > 8 * total_adv,
        "alice {total_alice} vs adversary {total_adv}: spoofing should be \
         devastating against unauthenticated Figure 1"
    );
}

#[test]
fn spoof_exchange_rate_is_a_stable_constant() {
    // The economics behind Theorem 5's shape: to keep Alice alive the
    // spoofer must land a nack in her listening schedule, which at rate
    // `p_i` costs Θ(1/p_i) injections per phase — the same order as
    // Alice's own per-phase spend. The exchange rate is therefore a
    // *constant* (here a favorable one: Alice pays in both phases, the
    // spoofer only in nack phases), not an exponentially growing one —
    // the adversary's real leverage in the spoofing model is the
    // jam-or-impersonate asymmetry (see `rcb_sim::lowerbound`), not a
    // free lunch per packet. Contrast with jam-only keep-alive, which
    // costs Θ(q·2^i) per epoch (experiment E11).
    let ratio = |budget: u64| {
        let mut a = 0u64;
        let mut t = 0u64;
        for seed in 100..106 {
            let (alice_cost, adv_cost, _, _) = run_with_spoofer(budget, seed);
            a += alice_cost;
            t += adv_cost;
        }
        a as f64 / t.max(1) as f64
    };
    let small = ratio(16);
    let large = ratio(96);
    assert!(
        small > 4.0 && large > 4.0,
        "rate stays favorable: {small:.1}, {large:.1}"
    );
    let spread = (small / large).max(large / small);
    assert!(
        spread < 3.0,
        "exchange rate should be roughly budget-independent: {small:.1} vs {large:.1}"
    );
}

/// Slot-log evidence of the attack mechanism: the trace's per-node
/// receptions show Alice decoding nacks in nack phases while Bob is long
/// gone — injections, not jamming — and the conformance replayer agrees
/// with the recorded outcome, because Figure 1 without authentication
/// *cannot* tell spoofed nacks apart (that is the Theorem 5 boundary).
#[test]
fn trace_exposes_spoofed_nacks_and_replays_cleanly() {
    let profile = Fig1Profile::with_start_epoch(0.05, 6);
    let mut alice = AliceProtocol::new(profile);
    let mut bob = BobProtocol::new(profile);
    let schedule = DuelSchedule::new(6);
    let partition = Partition::pair();
    let mut rng = RcbRng::new(11);
    let mut adv = NackSpoofer::new(40, 4, 0x5F00F);
    let mut trace = Trace::with_capacity(1 << 22);
    let out = run_exact(
        &mut [&mut alice, &mut bob],
        &mut adv,
        &schedule,
        &partition,
        &mut rng,
        ExactConfig {
            max_slots: 10_000_000,
        },
        Some(&mut trace),
    );
    assert!(out.completed);
    assert_eq!(trace.dropped(), 0);

    // Find the slot where Bob's mirror leaves the game, then count nacks
    // Alice decodes afterwards: genuine nacks are impossible once Bob has
    // halted, so every one of them is a spoof kept alive by the adversary.
    let replay = replay_duel_trace(&profile, &schedule, &trace);
    assert_eq!(
        replay.divergences,
        Vec::new(),
        "spoofed runs replay cleanly"
    );
    assert_eq!(replay.delivered, bob.received_message());
    let bob_gone_at = replay
        .delivery_slot
        .expect("spoofing does not jam; m gets through");
    let spoofed_nacks_heard = trace
        .records()
        .iter()
        .filter(|r| r.slot > bob_gone_at)
        .filter(|r| schedule.locate_duel(r.slot).phase == PhaseKind::Nack)
        .flat_map(|r| r.receptions.iter())
        .filter(|(node, kind)| *node == 0 && *kind == ReceptionKind::Nack)
        .count();
    assert!(
        spoofed_nacks_heard > 0,
        "the attack's whole point: Alice keeps decoding nacks after Bob halted"
    );
    // And spoofing is injection, not jamming: no slot is ever jam-masked.
    assert!(trace.records().iter().all(|r| r.jam_mask == 0));
}

#[test]
fn without_spoofing_alice_halts_cheaply() {
    // Control: same setup, no adversary — Alice halts after one epoch.
    let profile = Fig1Profile::with_start_epoch(0.05, 6);
    let mut alice = AliceProtocol::new(profile);
    let mut bob = BobProtocol::new(profile);
    let schedule = DuelSchedule::new(6);
    let partition = Partition::pair();
    let mut rng = RcbRng::new(9);
    let mut adv = NoJam;
    let out = run_exact(
        &mut [&mut alice, &mut bob],
        &mut adv,
        &schedule,
        &partition,
        &mut rng,
        ExactConfig::default(),
        None,
    );
    assert!(out.completed);
    assert!(out.slots <= 4 * 128, "one or two epochs at most");
}
