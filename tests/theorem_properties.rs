//! End-to-end checks of the paper's theorem-level properties, at test
//! scale (the bench harness re-verifies them at full scale).

use rcb::prelude::*;
use rcb_mathkit::fit::power_law_fit;
use rcb_mathkit::gof::{chi_square_gof, ks_two_sample};
use rcb_mathkit::sample::{bernoulli, binomial, sample_slots};
use rcb_mathkit::PHI_MINUS_ONE;
use rcb_sim::lowerbound::{golden_ratio_game, product_game};

/// Theorem 1 success guarantee: delivery probability ≥ 1 − ε under an
/// adaptive blanket blocker.
#[test]
fn theorem1_success_probability_under_attack() {
    let profile = Fig1Profile::with_start_epoch(0.05, 8);
    let trials = 200u64;
    let outcomes = run_trials(trials, 77, Parallelism::Auto, |_, rng| {
        let mut adv = BudgetedRepBlocker::new(20_000, 1.0);
        run_duel(&profile, &mut adv, rng, DuelConfig::default())
    });
    let delivered = outcomes.iter().filter(|o| o.delivered).count();
    // ε = 0.05 nominal with a scaled-down start epoch: allow 3× slack.
    assert!(
        delivered as f64 / trials as f64 >= 1.0 - 3.0 * 0.05,
        "delivered {delivered}/{trials}"
    );
}

/// Theorem 1 cost shape: fitted exponent of cost vs T near 1/2.
#[test]
fn theorem1_cost_scaling_exponent() {
    let profile = Fig1Profile::with_start_epoch(0.05, 8);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for k in [10u32, 12, 14, 16, 18] {
        let budget = 1u64 << k;
        let outcomes = run_trials(60, 123 ^ budget, Parallelism::Auto, |_, rng| {
            let mut adv = BudgetedRepBlocker::new(budget, 1.0);
            run_duel(&profile, &mut adv, rng, DuelConfig::default())
        });
        let mean_t: f64 = outcomes
            .iter()
            .map(|o| o.adversary_cost as f64)
            .sum::<f64>()
            / outcomes.len() as f64;
        let mean_cost: f64 =
            outcomes.iter().map(|o| o.max_cost() as f64).sum::<f64>() / outcomes.len() as f64;
        xs.push(mean_t);
        ys.push(mean_cost);
    }
    let fit = power_law_fit(&xs, &ys).expect("fit");
    assert!(
        (fit.exponent - 0.5).abs() < 0.2,
        "1-to-1 cost exponent {} should be ≈ 0.5 (R² {})",
        fit.exponent,
        fit.r2
    );
    // And clearly sublinear — the resource-competitive claim itself.
    assert!(fit.exponent < 0.8);
}

/// Theorem 3 headline: at fixed adversary budget, per-node cost decreases
/// as the system grows.
#[test]
fn theorem3_cost_decreases_with_n() {
    let params = OneToNParams::practical();
    let budget = 1u64 << 21;
    let mut means = Vec::new();
    for n in [8usize, 32, 64] {
        let outcomes = run_trials(8, 55 + n as u64, Parallelism::Auto, |_, rng| {
            let mut adv = BudgetedRepBlocker::new(budget, 1.0);
            run_broadcast(&params, n, &mut adv, rng, FastConfig::default())
        });
        let mean: f64 = outcomes.iter().map(|o| o.mean_cost()).sum::<f64>() / outcomes.len() as f64;
        means.push((n, mean));
    }
    assert!(
        means[2].1 < means[0].1,
        "cost must fall from n=8 ({:.1}) to n=64 ({:.1})",
        means[0].1,
        means[2].1
    );
}

/// Theorem 3 correctness: everyone is informed w.h.p. even under attack.
#[test]
fn theorem3_all_informed_under_attack() {
    let params = OneToNParams::practical();
    let outcomes = run_trials(12, 99, Parallelism::Auto, |_, rng| {
        let mut adv = BudgetedRepBlocker::new(30_000, 1.0);
        run_broadcast(&params, 24, &mut adv, rng, FastConfig::default())
    });
    let ok = outcomes
        .iter()
        .filter(|o| o.all_informed && o.all_terminated)
        .count();
    assert!(ok >= 10, "all-informed+terminated in {ok}/12 runs");
}

/// Theorem 2: the cost product is pinned to T for boundary protocols.
#[test]
fn theorem2_product_floor() {
    let mut rng = RcbRng::new(7);
    let row = product_game(2048, 0.5, 2000, &mut rng);
    assert!(
        row.product_over_t > 0.9 && row.product_over_t < 1.15,
        "product/T = {}",
        row.product_over_t
    );
}

/// Theorem 5: the golden-ratio split minimizes the worst-case exponent.
#[test]
fn theorem5_golden_ratio_is_optimal() {
    let mut rng = RcbRng::new(8);
    let t = 1u64 << 12;
    let at_phi = golden_ratio_game(t, PHI_MINUS_ONE, 400, &mut rng);
    assert!(
        (at_phi.worst_exponent - PHI_MINUS_ONE).abs() < 0.1,
        "exponent at φ−1: {}",
        at_phi.worst_exponent
    );
    for delta in [0.45, 0.8] {
        let other = golden_ratio_game(t, delta, 400, &mut rng);
        assert!(
            other.worst_exponent > at_phi.worst_exponent - 0.03,
            "δ = {delta} beat the golden split"
        );
    }
}

/// The KSY baseline's cost curve has the golden-ratio exponent — the
/// comparison target of §1.4 (our reconstruction must reproduce the
/// T^0.618 shape, clearly separated from Figure 1's T^0.5).
#[test]
fn ksy_baseline_has_golden_ratio_exponent() {
    use rcb_baselines::ksy::KsyProfile;
    let profile = KsyProfile::new();
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for k in [10u32, 12, 14, 16, 18, 20] {
        let budget = 1u64 << k;
        let outcomes = run_trials(60, 31 ^ budget, Parallelism::Auto, |_, rng| {
            let mut adv = BudgetedRepBlocker::new(budget, 1.0);
            run_duel(&profile, &mut adv, rng, DuelConfig::default())
        });
        let mean_t: f64 = outcomes
            .iter()
            .map(|o| o.adversary_cost as f64)
            .sum::<f64>()
            / outcomes.len() as f64;
        let mean_cost: f64 =
            outcomes.iter().map(|o| o.max_cost() as f64).sum::<f64>() / outcomes.len() as f64;
        xs.push(mean_t);
        ys.push(mean_cost);
    }
    let fit = power_law_fit(&xs, &ys).expect("fit");
    assert!(
        (fit.exponent - PHI_MINUS_ONE).abs() < 0.12,
        "KSY exponent {} should be ≈ φ−1 = 0.618 (R² {})",
        fit.exponent,
        fit.r2
    );
    // And clearly above Figure 1's 0.5 — the gap the paper closes.
    assert!(fit.exponent > 0.55);
}

/// Exact Binomial(n, p) pmf, computed by the stable recurrence.
fn binomial_pmf(n: u64, p: f64) -> Vec<f64> {
    let mut pmf = vec![0.0; n as usize + 1];
    pmf[0] = (1.0 - p).powi(n as i32);
    for k in 0..n as usize {
        pmf[k + 1] = pmf[k] * ((n - k as u64) as f64 / (k as f64 + 1.0)) * (p / (1.0 - p));
    }
    pmf
}

/// Histogram counts against scaled pmf expectations, pooling both tails so
/// every chi-square bin has expectation ≥ 5.
fn pooled_histogram(samples: &[u64], pmf: &[f64]) -> (Vec<u64>, Vec<f64>) {
    let trials = samples.len() as f64;
    let mut lo = 0usize;
    let mut hi = pmf.len() - 1;
    while lo < hi && trials * pmf[lo] < 5.0 {
        lo += 1;
    }
    while hi > lo && trials * pmf[hi] < 5.0 {
        hi -= 1;
    }
    // Bins: [0..=lo] pooled, lo+1..hi singletons, [hi..] pooled.
    let mut observed = vec![0u64; hi - lo + 1];
    let mut expected = vec![0.0f64; hi - lo + 1];
    for (k, &q) in pmf.iter().enumerate() {
        let bin = k.clamp(lo, hi) - lo;
        expected[bin] += trials * q;
    }
    for &s in samples {
        let bin = (s as usize).clamp(lo, hi) - lo;
        observed[bin] += 1;
    }
    (observed, expected)
}

/// The fast binomial sampler IS a sum of per-slot coin flips, statistically:
/// KS against a naive flip loop and chi-square against the exact pmf. The
/// engines' equivalence (cross_engine_validation.rs) bottoms out here — the
/// fast engines replace slot loops with these draws.
#[test]
fn sampler_binomial_matches_naive_coin_flips() {
    let (n, p, reps) = (48u64, 0.35f64, 4000usize);
    let mut rng_fast = RcbRng::new(0xB10);
    let mut rng_naive = RcbRng::new(0xF11B);
    let fast: Vec<u64> = (0..reps).map(|_| binomial(&mut rng_fast, n, p)).collect();
    let naive: Vec<u64> = (0..reps)
        .map(|_| (0..n).filter(|_| bernoulli(&mut rng_naive, p)).count() as u64)
        .collect();

    let fast_f: Vec<f64> = fast.iter().map(|&k| k as f64).collect();
    let naive_f: Vec<f64> = naive.iter().map(|&k| k as f64).collect();
    let ks = ks_two_sample(&fast_f, &naive_f);
    assert!(ks.p > 1e-3, "KS fast-vs-naive: D = {}, p = {}", ks.d, ks.p);

    let pmf = binomial_pmf(n, p);
    for (name, samples) in [("fast", &fast), ("naive", &naive)] {
        let (obs, exp) = pooled_histogram(samples, &pmf);
        let chi = chi_square_gof(&obs, &exp);
        assert!(
            chi.p > 1e-3,
            "{name} sampler off the exact pmf: χ² = {} (df {}), p = {}",
            chi.stat,
            chi.df,
            chi.p
        );
    }
}

/// `sample_slots` must match the naive per-slot loop in BOTH marginals the
/// engines rely on: how many slots fire (binomial count) and where they land
/// (uniform positions).
#[test]
fn sampler_slots_match_naive_per_slot_flips() {
    let (n, p, reps) = (96u64, 0.2f64, 2500usize);
    let mut rng_fast = RcbRng::new(0x51075);
    let mut rng_naive = RcbRng::new(0xC0111);
    let mut fast_counts = Vec::with_capacity(reps);
    let mut naive_counts = Vec::with_capacity(reps);
    let mut fast_positions = Vec::new();
    let mut naive_positions = Vec::new();
    for _ in 0..reps {
        let slots = sample_slots(&mut rng_fast, n, p);
        fast_counts.push(slots.len() as u64);
        fast_positions.extend(slots.iter().map(|&s| s as f64));
        let mut c = 0u64;
        for s in 0..n {
            if bernoulli(&mut rng_naive, p) {
                c += 1;
                naive_positions.push(s as f64);
            }
        }
        naive_counts.push(c);
    }

    let fast_f: Vec<f64> = fast_counts.iter().map(|&k| k as f64).collect();
    let naive_f: Vec<f64> = naive_counts.iter().map(|&k| k as f64).collect();
    let ks_counts = ks_two_sample(&fast_f, &naive_f);
    assert!(
        ks_counts.p > 1e-3,
        "slot-count KS: D = {}, p = {}",
        ks_counts.d,
        ks_counts.p
    );
    let ks_pos = ks_two_sample(&fast_positions, &naive_positions);
    assert!(
        ks_pos.p > 1e-3,
        "slot-position KS: D = {}, p = {}",
        ks_pos.d,
        ks_pos.p
    );

    let pmf = binomial_pmf(n, p);
    let (obs, exp) = pooled_histogram(&fast_counts, &pmf);
    let chi = chi_square_gof(&obs, &exp);
    assert!(
        chi.p > 1e-3,
        "sample_slots count off Binomial({n}, {p}): χ² = {}, p = {}",
        chi.stat,
        chi.p
    );
}

/// Latency optimality: both protocols finish in O(T) slots.
#[test]
fn latency_linear_in_t() {
    let profile = Fig1Profile::with_start_epoch(0.05, 8);
    let budget = 1u64 << 16;
    let outcomes = run_trials(40, 31, Parallelism::Auto, |_, rng| {
        let mut adv = BudgetedRepBlocker::new(budget, 1.0);
        run_duel(&profile, &mut adv, rng, DuelConfig::default())
    });
    for o in &outcomes {
        assert!(
            o.slots < 64 * o.adversary_cost.max(1),
            "latency {} far exceeds O(T = {})",
            o.slots,
            o.adversary_cost
        );
    }
}
