//! # rcb — Resource-Competitive Broadcast with Jamming
//!
//! A Rust reproduction of Gilbert, King, Pettie, Porat, Saia & Young,
//! *"(Near) Optimal Resource-Competitive Broadcast with Jamming"*,
//! SPAA 2014.
//!
//! The workspace implements the paper end to end:
//!
//! | Piece | Crate |
//! |---|---|
//! | Slotted single-hop radio channel (collisions, CCA, ℓ-uniform jamming, energy ledger) | [`rcb_channel`] |
//! | Adaptive jamming/spoofing adversary strategies, incl. the lower-bound constructions | [`rcb_adversary`] |
//! | The paper's algorithms: 1-to-1 (Figure 1), 1-to-n (Figure 2), combined | [`rcb_core`] |
//! | Baselines: King–Saia–Young golden ratio, naive always-on, oblivious splits | [`rcb_baselines`] |
//! | Exact and fast simulation engines, parallel Monte-Carlo runner | [`rcb_sim`] |
//! | Scaling fits and table rendering for the experiment harness | [`rcb_analysis`] |
//! | Samplers, statistics, Chernoff calculators | [`rcb_mathkit`] |
//!
//! ## Quickstart
//!
//! A run is a declarative [`ScenarioSpec`](rcb_sim::scenario::ScenarioSpec):
//! workload, engine, adversary, faults, seeds, and trial count in one
//! validated value (DESIGN.md §10).
//!
//! ```
//! use rcb::prelude::*;
//!
//! // Alice sends m to Bob while an adversary blanket-jams early phases
//! // with a budget of 10_000 slot-units.
//! let spec = ScenarioSpec::duel(DuelProtocol::fig1(0.01, 8))
//!     .with_adversary(AdversarySpec::Budgeted { budget: 10_000, fraction: 1.0 });
//! let mut rng = RcbRng::new(42);
//! let outcome = spec.run(&mut rng).expect("well under the engine cap").into_duel();
//!
//! assert!(outcome.delivered, "after the budget is spent, m gets through");
//! // Resource competitiveness: the good nodes spend far less than T.
//! assert!(outcome.max_cost() < outcome.adversary_cost / 4);
//! ```
//!
//! ## 1-to-n in one call
//!
//! ```
//! use rcb::prelude::*;
//!
//! // Defaults: practical Figure-2 constants, node 0 informed, no jamming
//! // (T = 0: the efficiency-function regime).
//! let spec = ScenarioSpec::broadcast(32);
//! let mut rng = RcbRng::new(7);
//! let out = spec.run(&mut rng).expect("unjammed runs finish early").into_broadcast();
//! assert!(out.all_informed && out.all_terminated);
//! ```
//!
//! The pinned perf scenarios are published as a named registry:
//! [`registry()`](rcb_sim::scenario::registry) /
//! [`find_scenario`](rcb_sim::scenario::find_scenario) in the library,
//! `rcbsim scenario list` / `rcbsim scenario run <name>` on the CLI. The
//! low-level entry points (`run_duel`, `run_broadcast`, `run_exact`, and
//! their checked/faulted variants) remain for direct engine access and
//! are bit-identical to the spec path.

pub use rcb_adversary as adversary;
pub use rcb_analysis as analysis;
pub use rcb_baselines as baselines;
pub use rcb_channel as channel;
pub use rcb_core as core_alg;
pub use rcb_mathkit as mathkit;
pub use rcb_sim as sim;

/// The most common imports in one place.
pub mod prelude {
    pub use rcb_adversary::adapter::{JamTarget, RepAsSlotAdversary};
    pub use rcb_adversary::rep_strategies::{
        BudgetedRepBlocker, HalfRepBlocker, NoJamRep, RandomRep, SuffixFractionRep,
    };
    pub use rcb_adversary::slot_strategies::{
        BudgetedPhaseBlocker, NoJam, PeriodicJammer, RandomJammer, ReactiveJammer,
    };
    pub use rcb_adversary::threshold::ThresholdAdversary;
    pub use rcb_adversary::traits::{JamPlan, RepetitionAdversary, SlotAdversary};
    pub use rcb_baselines::combined::{combined_alice, combined_bob};
    pub use rcb_baselines::ksy::{KsyAlice, KsyBob, KsyProfile};
    pub use rcb_baselines::naive::{NaiveAlice, NaiveBob};
    pub use rcb_baselines::oblivious::ConstantRatePair;
    pub use rcb_channel::{Action, EnergyLedger, Partition, Payload, Reception};
    pub use rcb_core::combined::BalancedDuo;
    pub use rcb_core::one_to_n::{OneToNNode, OneToNParams, OneToNSchedule, OneToNSlotNode};
    pub use rcb_core::one_to_one::{
        AliceProtocol, BobProtocol, DuelProfile, DuelSchedule, Fig1Profile,
    };
    pub use rcb_core::protocol::{Schedule, SlotProtocol};
    pub use rcb_mathkit::rng::{RcbRng, SeedSequence};
    pub use rcb_sim::conformance::{
        default_grid, replay_broadcast_trace, replay_duel_trace, run_broadcast_cell, run_duel_cell,
        run_grid, BroadcastCell, ConformanceConfig, DuelCell, GridReport,
    };
    pub use rcb_sim::duel::{run_duel, run_duel_checked, run_duel_faulted, DuelConfig};
    pub use rcb_sim::error::{SimError, TrialFailure};
    pub use rcb_sim::exact::{run_exact, run_exact_checked, run_exact_faulted, ExactConfig};
    pub use rcb_sim::fast::{
        run_broadcast, run_broadcast_checked, run_broadcast_faulted, FastConfig,
    };
    pub use rcb_sim::faults::{FaultConfigError, FaultPlan};
    pub use rcb_sim::outcome::{BroadcastOutcome, DuelOutcome};
    pub use rcb_sim::runner::{run_trials, run_trials_isolated, Parallelism};
    pub use rcb_sim::scenario::{
        find_scenario, registry, AdversarySpec, BroadcastWorkload, DuelProtocol, DuelWorkload,
        Engine, NamedScenario, Outcome, ScenarioSpec, SeedPolicy, Workload,
    };
}

/// Compiles the README's code blocks as doctests so the front-page example
/// can never rot.
#[doc = include_str!("../README.md")]
#[cfg(doctest)]
pub struct ReadmeDoctests;
